"""DEFLATE (RFC 1951) compression and decompression from scratch.

This is the real algorithm behind the ``compress``/``decompress`` DP
kernels: LZ77 matching over a 32 KiB window followed by canonical
Huffman coding, with all three block types (stored, fixed, dynamic).
The output is a *raw* DEFLATE stream, interoperable with
``zlib.decompress(data, wbits=-15)`` — and :func:`inflate` decodes
streams produced by zlib, which the tests exploit for cross-validation.

Levels: 0 = stored blocks only; 1 = fixed-Huffman, greedy matching;
6 (default) and above = dynamic Huffman with lazy matching.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .bitio import BitReader, BitWriter
from .huffman import (
    CanonicalDecoder,
    canonical_codes,
    code_lengths_from_frequencies,
)

__all__ = ["deflate", "inflate", "compression_ratio"]

_WINDOW_SIZE = 32 * 1024
_MIN_MATCH = 3
_MAX_MATCH = 258
_MAX_STORED = 65535
_END_OF_BLOCK = 256

# Length code table (RFC 1951 §3.2.5): code -> (extra bits, base length).
_LENGTH_CODES: List[Tuple[int, int]] = [
    (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10),
    (1, 11), (1, 13), (1, 15), (1, 17), (2, 19), (2, 23), (2, 27), (2, 31),
    (3, 35), (3, 43), (3, 51), (3, 59), (4, 67), (4, 83), (4, 99), (4, 115),
    (5, 131), (5, 163), (5, 195), (5, 227), (0, 258),
]

# Distance code table: code -> (extra bits, base distance).
_DIST_CODES: List[Tuple[int, int]] = [
    (0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 7), (2, 9), (2, 13),
    (3, 17), (3, 25), (4, 33), (4, 49), (5, 65), (5, 97), (6, 129),
    (6, 193), (7, 257), (7, 385), (8, 513), (8, 769), (9, 1025),
    (9, 1537), (10, 2049), (10, 3073), (11, 4097), (11, 6145),
    (12, 8193), (12, 12289), (13, 16385), (13, 24577),
]

# Order in which code-length-code lengths are transmitted (§3.2.7).
_CLC_ORDER = (16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1,
              15)


def _build_length_lookup() -> List[Tuple[int, int, int]]:
    table: List[Tuple[int, int, int]] = [(0, 0, 0)] * (_MAX_MATCH + 1)
    for code_index in range(len(_LENGTH_CODES) - 1, -1, -1):
        extra, base = _LENGTH_CODES[code_index]
        for length in range(base, _MAX_MATCH + 1):
            if table[length] == (0, 0, 0):
                table[length] = (257 + code_index, extra, length - base)
    return table


def _build_dist_lookup() -> List[Tuple[int, int, int]]:
    table: List[Tuple[int, int, int]] = [(0, 0, 0)] * (_WINDOW_SIZE + 1)
    for code_index in range(len(_DIST_CODES) - 1, -1, -1):
        extra, base = _DIST_CODES[code_index]
        for distance in range(base, _WINDOW_SIZE + 1):
            if table[distance] == (0, 0, 0):
                table[distance] = (code_index, extra, distance - base)
    return table


#: direct lookup tables: length/distance -> (code, extra bits, extra value)
_LENGTH_LOOKUP = _build_length_lookup()
_DIST_LOOKUP = _build_dist_lookup()


def _length_to_code(length: int) -> Tuple[int, int, int]:
    """Map a match length to (length code, extra bits, extra value)."""
    if not _MIN_MATCH <= length <= _MAX_MATCH:
        raise ValueError(f"match length {length} out of range")
    return _LENGTH_LOOKUP[length]


def _distance_to_code(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (distance code, extra bits, extra value)."""
    if not 1 <= distance <= _WINDOW_SIZE:
        raise ValueError(f"distance {distance} out of range")
    return _DIST_LOOKUP[distance]


def _reverse_code(code: int, nbits: int) -> int:
    """Bit-reverse a Huffman code (DEFLATE packs codes MSB-first)."""
    reversed_code = 0
    for _ in range(nbits):
        reversed_code = (reversed_code << 1) | (code & 1)
        code >>= 1
    return reversed_code


def _fixed_literal_lengths() -> List[int]:
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    return lengths


# -- LZ77 ---------------------------------------------------------------------

# A token is either (-1, byte) for a literal or (length, distance).
Token = Tuple[int, int]


def _lz77_tokens(data: bytes, lazy: bool) -> List[Token]:
    """Greedy (or one-step lazy) LZ77 with hash-chain match search.

    The match search walks a hash chain exactly as zlib does, with two
    constant-factor tricks that leave the chosen tokens identical:

    * a candidate is rejected with one byte compare unless it can beat
      the current best (``data[candidate + best_len]`` check), and
    * match extension compares 32-byte ``memoryview`` blocks (C-speed)
      and only scans bytes inside the final, mismatching block.
    """
    n = len(data)
    tokens: List[Token] = []
    head: dict = {}      # 3-byte hash -> most recent position
    prev = [0] * n       # chain of earlier positions with same hash
    max_chain = 64 if lazy else 32
    view = memoryview(data)

    def insert(pos: int) -> Optional[int]:
        """Insert position into the chains; return previous head."""
        if pos + _MIN_MATCH > n:
            return None
        key = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16)
        older = head.get(key)
        head[key] = pos
        if older is not None:
            prev[pos] = older
        else:
            prev[pos] = -1
        return older

    def find_match(pos: int, chain_start: Optional[int]) -> Tuple[int, int]:
        """Best (length, distance) at ``pos``; (0, 0) if none."""
        best_len = 0
        best_dist = 0
        limit = min(_MAX_MATCH, n - pos)
        if limit < _MIN_MATCH or chain_start is None:
            return 0, 0
        candidate = chain_start
        chains = 0
        while candidate >= 0 and chains < max_chain:
            distance = pos - candidate
            if distance > _WINDOW_SIZE:
                break
            # Quick reject: only candidates that extend at least one
            # byte past the best so far can win (ties keep the first,
            # i.e. nearest, match — same rule as the plain scan).
            if (best_len == 0 or
                    data[candidate + best_len] == data[pos + best_len]):
                # Extend by 32-byte blocks, then bytes in the last one.
                length = 0
                while (length + 32 <= limit and
                       view[candidate + length:candidate + length + 32]
                       == view[pos + length:pos + length + 32]):
                    length += 32
                while (length < limit and
                       data[candidate + length] == data[pos + length]):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = distance
                    if length >= limit:
                        break
            candidate = prev[candidate]
            chains += 1
        if best_len >= _MIN_MATCH:
            return best_len, best_dist
        return 0, 0

    pos = 0
    while pos < n:
        chain = insert(pos)
        length, distance = find_match(pos, chain)
        if lazy and 0 < length < _MAX_MATCH and pos + 1 < n:
            # Lazy matching: if the next position matches longer, emit
            # a literal now and take the longer match next round.
            next_chain = head.get(
                data[pos + 1] | (data[pos + 2] << 8) |
                (data[pos + 3] << 16)
                if pos + 3 < n else -1
            )
            next_len, _ = find_match(pos + 1, next_chain)
            if next_len > length:
                tokens.append((-1, data[pos]))
                pos += 1
                continue
        if length:
            tokens.append((length, distance))
            # Register the skipped positions in the hash chains.
            for offset in range(1, length):
                insert(pos + offset)
            pos += length
        else:
            tokens.append((-1, data[pos]))
            pos += 1
    return tokens


# -- block emission ------------------------------------------------------------


def _emit_stored(writer: BitWriter, data: bytes, final: bool) -> None:
    offset = 0
    first = True
    while first or offset < len(data):
        first = False
        chunk = data[offset:offset + _MAX_STORED]
        offset += len(chunk)
        is_last = final and offset >= len(data)
        writer.write_bits(1 if is_last else 0, 1)
        writer.write_bits(0, 2)                  # BTYPE=00
        writer.align_to_byte()
        writer.write_bytes(len(chunk).to_bytes(2, "little"))
        writer.write_bytes((len(chunk) ^ 0xFFFF).to_bytes(2, "little"))
        writer.write_bytes(chunk)


def _emit_tokens(writer: BitWriter, tokens: List[Token],
                 lit_lengths: List[int], lit_codes: List[int],
                 dist_lengths: List[int], dist_codes: List[int]) -> None:
    # Bit-reverse each code once per block, not once per occurrence.
    lit = [(_reverse_code(code, nbits), nbits)
           for code, nbits in zip(lit_codes, lit_lengths)]
    dist = [(_reverse_code(code, nbits), nbits)
            for code, nbits in zip(dist_codes, dist_lengths)]
    write_bits = writer.write_bits
    length_lookup = _LENGTH_LOOKUP
    dist_lookup = _DIST_LOOKUP
    for length, value in tokens:
        if length < 0:
            write_bits(*lit[value])
        else:
            code, extra, extra_val = length_lookup[length]
            write_bits(*lit[code])
            if extra:
                write_bits(extra_val, extra)
            dcode, dextra, dextra_val = dist_lookup[value]
            write_bits(*dist[dcode])
            if dextra:
                write_bits(dextra_val, dextra)
    write_bits(*lit[_END_OF_BLOCK])


def _emit_fixed(writer: BitWriter, tokens: List[Token], final: bool) -> None:
    writer.write_bits(1 if final else 0, 1)
    writer.write_bits(1, 2)                      # BTYPE=01
    lit_lengths = _fixed_literal_lengths()
    lit_codes = canonical_codes(lit_lengths)
    dist_lengths = [5] * 30
    dist_codes = canonical_codes(dist_lengths)
    _emit_tokens(writer, tokens, lit_lengths, lit_codes,
                 dist_lengths, dist_codes)


def _rle_code_lengths(lengths: List[int]) -> List[Tuple[int, int, int]]:
    """RLE-encode code lengths with symbols 16/17/18 (§3.2.7).

    Returns (symbol, extra bits, extra value) triples.
    """
    out: List[Tuple[int, int, int]] = []
    i = 0
    n = len(lengths)
    while i < n:
        length = lengths[i]
        j = i
        while j < n and lengths[j] == length:
            j += 1
        run = j - i
        i = j
        if length == 0:
            while run >= 11:
                reps = min(run, 138)
                out.append((18, 7, reps - 11))
                run -= reps
            if run >= 3:
                out.append((17, 3, run - 3))
                run = 0
            out.extend((0, 0, 0) for _ in range(run))
        else:
            out.append((length, 0, 0))
            run -= 1
            while run >= 3:
                reps = min(run, 6)
                out.append((16, 2, reps - 3))
                run -= reps
            out.extend((length, 0, 0) for _ in range(run))
    return out


def _emit_dynamic(writer: BitWriter, tokens: List[Token],
                  final: bool) -> None:
    # Symbol frequencies.
    lit_freq = [0] * 286
    dist_freq = [0] * 30
    lit_freq[_END_OF_BLOCK] = 1
    for length, value in tokens:
        if length < 0:
            lit_freq[value] += 1
        else:
            code, _, _ = _length_to_code(length)
            lit_freq[code] += 1
            dcode, _, _ = _distance_to_code(value)
            dist_freq[dcode] += 1

    lit_lengths = code_lengths_from_frequencies(lit_freq, 15)
    dist_lengths = code_lengths_from_frequencies(dist_freq, 15)
    # The distance tree must have at least one code even if unused.
    if not any(dist_lengths):
        dist_lengths[0] = 1
    lit_codes = canonical_codes(lit_lengths)
    dist_codes = canonical_codes(dist_lengths)

    hlit = 286
    while hlit > 257 and lit_lengths[hlit - 1] == 0:
        hlit -= 1
    hdist = 30
    while hdist > 1 and dist_lengths[hdist - 1] == 0:
        hdist -= 1

    combined = lit_lengths[:hlit] + dist_lengths[:hdist]
    rle = _rle_code_lengths(combined)

    clc_freq = [0] * 19
    for symbol, _, _ in rle:
        clc_freq[symbol] += 1
    clc_lengths = code_lengths_from_frequencies(clc_freq, 7)
    clc_codes = canonical_codes(clc_lengths)

    hclen = 19
    while hclen > 4 and clc_lengths[_CLC_ORDER[hclen - 1]] == 0:
        hclen -= 1

    writer.write_bits(1 if final else 0, 1)
    writer.write_bits(2, 2)                      # BTYPE=10
    writer.write_bits(hlit - 257, 5)
    writer.write_bits(hdist - 1, 5)
    writer.write_bits(hclen - 4, 4)
    for i in range(hclen):
        writer.write_bits(clc_lengths[_CLC_ORDER[i]], 3)
    for symbol, extra, extra_val in rle:
        writer.write_huffman_code(clc_codes[symbol], clc_lengths[symbol])
        if extra:
            writer.write_bits(extra_val, extra)
    _emit_tokens(writer, tokens, lit_lengths, lit_codes,
                 dist_lengths, dist_codes)


# -- public API -----------------------------------------------------------------


def deflate(data: bytes, level: int = 6) -> bytes:
    """Compress ``data`` into a raw DEFLATE stream."""
    if not 0 <= level <= 9:
        raise ValueError(f"level must be in [0, 9], got {level}")
    data = bytes(data)
    writer = BitWriter()
    if level == 0 or not data:
        _emit_stored(writer, data, final=True)
        return writer.getvalue()
    tokens = _lz77_tokens(data, lazy=level >= 6)
    if level == 1:
        _emit_fixed(writer, tokens, final=True)
    else:
        _emit_dynamic(writer, tokens, final=True)
    return writer.getvalue()


def inflate(data: bytes) -> bytes:
    """Decompress a raw DEFLATE stream."""
    reader = BitReader(bytes(data))
    out = bytearray()
    fixed_lit_decoder: Optional[CanonicalDecoder] = None
    fixed_dist_decoder: Optional[CanonicalDecoder] = None

    while True:
        final = reader.read_bit()
        btype = reader.read_bits(2)
        if btype == 0:
            reader.align_to_byte()
            stored_len = int.from_bytes(reader.read_bytes(2), "little")
            nlen = int.from_bytes(reader.read_bytes(2), "little")
            if stored_len ^ 0xFFFF != nlen:
                raise ValueError("corrupt stored block header")
            out.extend(reader.read_bytes(stored_len))
        elif btype in (1, 2):
            if btype == 1:
                if fixed_lit_decoder is None:
                    fixed_lit_decoder = CanonicalDecoder(
                        _fixed_literal_lengths()
                    )
                    fixed_dist_decoder = CanonicalDecoder([5] * 30)
                lit_decoder = fixed_lit_decoder
                dist_decoder = fixed_dist_decoder
            else:
                lit_decoder, dist_decoder = _read_dynamic_tables(reader)
            _inflate_block(reader, out, lit_decoder, dist_decoder)
        else:
            raise ValueError(f"invalid block type {btype}")
        if final:
            break
    return bytes(out)


def _read_dynamic_tables(reader: BitReader):
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    clc_lengths = [0] * 19
    for i in range(hclen):
        clc_lengths[_CLC_ORDER[i]] = reader.read_bits(3)
    clc_decoder = CanonicalDecoder(clc_lengths)

    lengths: List[int] = []
    while len(lengths) < hlit + hdist:
        symbol = clc_decoder.decode(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise ValueError("repeat code with no previous length")
            reps = 3 + reader.read_bits(2)
            lengths.extend([lengths[-1]] * reps)
        elif symbol == 17:
            reps = 3 + reader.read_bits(3)
            lengths.extend([0] * reps)
        else:
            reps = 11 + reader.read_bits(7)
            lengths.extend([0] * reps)
    if len(lengths) != hlit + hdist:
        raise ValueError("code length table overflow")
    lit_decoder = CanonicalDecoder(lengths[:hlit])
    dist_decoder = CanonicalDecoder(lengths[hlit:])
    return lit_decoder, dist_decoder


def _inflate_block(reader: BitReader, out: bytearray,
                   lit_decoder: CanonicalDecoder,
                   dist_decoder: CanonicalDecoder) -> None:
    while True:
        symbol = lit_decoder.decode(reader)
        if symbol < 256:
            out.append(symbol)
        elif symbol == _END_OF_BLOCK:
            return
        else:
            extra, base = _LENGTH_CODES[symbol - 257]
            length = base + (reader.read_bits(extra) if extra else 0)
            dcode = dist_decoder.decode(reader)
            dextra, dbase = _DIST_CODES[dcode]
            distance = dbase + (reader.read_bits(dextra) if dextra else 0)
            if distance > len(out):
                raise ValueError("distance beyond window start")
            start = len(out) - distance
            for i in range(length):   # may overlap itself (RLE-style)
                out.append(out[start + i])


def compression_ratio(data: bytes, level: int = 6) -> float:
    """Original size / compressed size for ``data``."""
    if not data:
        return 1.0
    return len(data) / len(deflate(data, level))
