"""Real data-path algorithm implementations.

These are the *functional* halves of the DP kernels: when a kernel
runs over a :class:`~repro.buffers.RealBuffer`, the bytes really are
DEFLATEd / AES-CTR'd / regex-scanned / dedup-chunked by the code here.
Timing is charged separately by the hardware cost models.

All implementations are from scratch (no stdlib zlib/hashlib use in
the algorithms themselves) and cross-validated in the tests — e.g.
:func:`deflate` output is decodable by ``zlib`` and vice versa, and
AES matches the FIPS-197 vectors.
"""

from .aes import Aes128, aes128_ctr, expand_key
from .bitio import BitReader, BitWriter
from .crc import Crc32, crc32
from .dedup import Chunk, DedupIndex, chunk_stream, dedup_ratio
from .deflate import compression_ratio, deflate, inflate
from .huffman import (
    CanonicalDecoder,
    canonical_codes,
    code_lengths_from_frequencies,
)
from .regex import Pattern, compile_pattern, findall, search

__all__ = [
    "Aes128",
    "aes128_ctr",
    "expand_key",
    "BitReader",
    "BitWriter",
    "Crc32",
    "crc32",
    "Chunk",
    "DedupIndex",
    "chunk_stream",
    "dedup_ratio",
    "compression_ratio",
    "deflate",
    "inflate",
    "CanonicalDecoder",
    "canonical_codes",
    "code_lengths_from_frequencies",
    "Pattern",
    "compile_pattern",
    "findall",
    "search",
]
