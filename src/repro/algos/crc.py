"""CRC-32 (IEEE 802.3) implemented from scratch.

Table-driven, reflected polynomial 0xEDB88320 — bit-compatible with
``zlib.crc32``.  Used as the integrity kernel (``dpk_crc32``) and by
the dedup fingerprinting path.
"""

from __future__ import annotations

from typing import Union

__all__ = ["crc32", "Crc32"]

_POLY = 0xEDB88320


def _build_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: Union[bytes, bytearray, memoryview],
          value: int = 0) -> int:
    """CRC-32 of ``data``, continuing from ``value`` (like zlib.crc32)."""
    crc = (value & 0xFFFFFFFF) ^ 0xFFFFFFFF
    for byte in bytes(data):
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class Crc32:
    """Incremental CRC-32 (hashlib-style interface)."""

    def __init__(self, data: bytes = b""):
        self._value = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Feed more bytes into the checksum."""
        self._value = crc32(data, self._value)

    @property
    def value(self) -> int:
        return self._value

    def hexdigest(self) -> str:
        """The checksum as 8 lowercase hex digits."""
        return f"{self._value:08x}"
