"""A Thompson-NFA regular expression engine, from scratch.

The real algorithm behind the ``regex`` DP kernel (BlueField-2's RegEx
ASIC accelerates exactly this kind of streaming pattern scan).  The
engine runs in guaranteed O(pattern x text) time — no backtracking
blow-ups — matching the behaviour of hardware DFA/NFA engines.

Supported syntax: literals, ``.``, ``*``, ``+``, ``?``, alternation
``|``, grouping ``(...)``, character classes ``[a-z]`` / ``[^a-z]``,
anchors ``^`` and ``$``, and escapes (``\\d``, ``\\w``, ``\\s``, and
escaped metacharacters).  Patterns operate on **bytes**, as a data-path
scanner would.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

__all__ = ["Pattern", "compile_pattern", "search", "findall"]


class RegexSyntaxError(ValueError):
    """Raised for malformed patterns."""


# -- parsing into an AST ---------------------------------------------------

# AST nodes are tuples: ("char", frozenset_of_byte_values) |
# ("concat", a, b) | ("alt", a, b) | ("star", a) | ("plus", a) |
# ("opt", a) | ("empty",) | ("start",) | ("end",)

_METACHARS = set(b"\\.[]()*+?|^$")

_CLASS_SHORTHANDS = {
    ord("d"): frozenset(range(ord("0"), ord("9") + 1)),
    ord("w"): frozenset(
        list(range(ord("a"), ord("z") + 1)) +
        list(range(ord("A"), ord("Z") + 1)) +
        list(range(ord("0"), ord("9") + 1)) + [ord("_")]
    ),
    ord("s"): frozenset(b" \t\n\r\f\v"),
}

_ANY_BYTE = frozenset(range(256)) - {ord("\n")}


class _Parser:
    """Recursive-descent parser for the supported syntax."""

    def __init__(self, pattern: bytes):
        self._pattern = pattern
        self._pos = 0

    def parse(self):
        node = self._alternation()
        if self._pos != len(self._pattern):
            raise RegexSyntaxError(
                f"unexpected {chr(self._pattern[self._pos])!r} at "
                f"position {self._pos}"
            )
        return node

    def _peek(self) -> Optional[int]:
        if self._pos < len(self._pattern):
            return self._pattern[self._pos]
        return None

    def _take(self) -> int:
        byte = self._pattern[self._pos]
        self._pos += 1
        return byte

    def _alternation(self):
        node = self._concat()
        while self._peek() == ord("|"):
            self._take()
            node = ("alt", node, self._concat())
        return node

    def _concat(self):
        parts = []
        while True:
            byte = self._peek()
            if byte is None or byte in (ord("|"), ord(")")):
                break
            parts.append(self._repeat())
        if not parts:
            return ("empty",)
        node = parts[0]
        for part in parts[1:]:
            node = ("concat", node, part)
        return node

    def _repeat(self):
        node = self._atom()
        while True:
            byte = self._peek()
            if byte == ord("*"):
                self._take()
                node = ("star", node)
            elif byte == ord("+"):
                self._take()
                node = ("plus", node)
            elif byte == ord("?"):
                self._take()
                node = ("opt", node)
            else:
                return node

    def _atom(self):
        byte = self._take()
        if byte == ord("("):
            node = self._alternation()
            if self._peek() != ord(")"):
                raise RegexSyntaxError("unbalanced parenthesis")
            self._take()
            return node
        if byte == ord("["):
            return ("char", self._char_class())
        if byte == ord("."):
            return ("char", _ANY_BYTE)
        if byte == ord("^"):
            return ("start",)
        if byte == ord("$"):
            return ("end",)
        if byte == ord("\\"):
            return ("char", self._escape())
        if byte in (ord("*"), ord("+"), ord("?")):
            raise RegexSyntaxError("quantifier with nothing to repeat")
        return ("char", frozenset([byte]))

    def _escape(self) -> FrozenSet[int]:
        if self._peek() is None:
            raise RegexSyntaxError("dangling escape")
        byte = self._take()
        if byte in _CLASS_SHORTHANDS:
            return _CLASS_SHORTHANDS[byte]
        upper = byte | 0x20
        if chr(byte).isalpha() and upper in _CLASS_SHORTHANDS:
            # \D, \W, \S: complements
            return frozenset(range(256)) - _CLASS_SHORTHANDS[upper]
        special = {ord("n"): ord("\n"), ord("t"): ord("\t"),
                   ord("r"): ord("\r"), ord("0"): 0}
        return frozenset([special.get(byte, byte)])

    def _char_class(self) -> FrozenSet[int]:
        negate = False
        if self._peek() == ord("^"):
            self._take()
            negate = True
        members: Set[int] = set()
        first = True
        while True:
            byte = self._peek()
            if byte is None:
                raise RegexSyntaxError("unterminated character class")
            if byte == ord("]") and not first:
                self._take()
                break
            first = False
            byte = self._take()
            if byte == ord("\\"):
                members |= self._escape()
                continue
            if (self._peek() == ord("-")
                    and self._pos + 1 < len(self._pattern)
                    and self._pattern[self._pos + 1] != ord("]")):
                self._take()                      # consume '-'
                high = self._take()
                if high == ord("\\"):
                    high = min(self._escape())
                if high < byte:
                    raise RegexSyntaxError("reversed range in class")
                members |= set(range(byte, high + 1))
            else:
                members.add(byte)
        if negate:
            return frozenset(range(256)) - frozenset(members)
        return frozenset(members)


# -- NFA construction (Thompson) ---------------------------------------------

_EPSILON = None
_START_ANCHOR = "^"
_END_ANCHOR = "$"


class _Nfa:
    """NFA with epsilon transitions; states are integers."""

    def __init__(self):
        self.transitions: List[List[Tuple[object, int]]] = []
        self.start = self._new_state()
        self.accept: int = -1

    def _new_state(self) -> int:
        self.transitions.append([])
        return len(self.transitions) - 1

    def add(self, src: int, label: object, dst: int) -> None:
        self.transitions[src].append((label, dst))


def _build(node, nfa: _Nfa) -> Tuple[int, int]:
    """Return (entry, exit) state pair for the AST node."""
    kind = node[0]
    if kind == "char":
        entry, exit_ = nfa._new_state(), nfa._new_state()
        nfa.add(entry, node[1], exit_)
        return entry, exit_
    if kind == "empty":
        entry = nfa._new_state()
        return entry, entry
    if kind in ("start", "end"):
        entry, exit_ = nfa._new_state(), nfa._new_state()
        anchor = _START_ANCHOR if kind == "start" else _END_ANCHOR
        nfa.add(entry, anchor, exit_)
        return entry, exit_
    if kind == "concat":
        a_in, a_out = _build(node[1], nfa)
        b_in, b_out = _build(node[2], nfa)
        nfa.add(a_out, _EPSILON, b_in)
        return a_in, b_out
    if kind == "alt":
        entry, exit_ = nfa._new_state(), nfa._new_state()
        a_in, a_out = _build(node[1], nfa)
        b_in, b_out = _build(node[2], nfa)
        nfa.add(entry, _EPSILON, a_in)
        nfa.add(entry, _EPSILON, b_in)
        nfa.add(a_out, _EPSILON, exit_)
        nfa.add(b_out, _EPSILON, exit_)
        return entry, exit_
    if kind in ("star", "opt", "plus"):
        entry, exit_ = nfa._new_state(), nfa._new_state()
        inner_in, inner_out = _build(node[1], nfa)
        nfa.add(entry, _EPSILON, inner_in)
        if kind != "plus":
            nfa.add(entry, _EPSILON, exit_)
        nfa.add(inner_out, _EPSILON, exit_)
        if kind != "opt":
            nfa.add(inner_out, _EPSILON, inner_in)
        return entry, exit_
    raise AssertionError(f"unknown AST node {kind!r}")


class Pattern:
    """A compiled pattern: Thompson NFA simulated breadth-first."""

    def __init__(self, pattern):
        if isinstance(pattern, str):
            pattern = pattern.encode()
        self.pattern = bytes(pattern)
        ast = _Parser(self.pattern).parse()
        nfa = _Nfa()
        entry, exit_ = _build(ast, nfa)
        nfa.add(nfa.start, _EPSILON, entry)
        nfa.accept = exit_
        self._nfa = nfa

    # -- NFA simulation ----------------------------------------------------

    def _closure(self, states: Set[int], at_start: bool,
                 at_end: bool) -> Set[int]:
        """Epsilon (and satisfied-anchor) closure of ``states``."""
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for label, dst in self._nfa.transitions[state]:
                follow = (
                    label is _EPSILON
                    or (label == _START_ANCHOR and at_start)
                    or (label == _END_ANCHOR and at_end)
                )
                if follow and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen

    def match_at(self, text: bytes, start: int) -> Optional[int]:
        """Longest match beginning exactly at ``start``; returns end.

        ``None`` if no match starts there.  Zero-length matches return
        ``start`` itself.
        """
        text = bytes(text)
        n = len(text)
        states = self._closure({self._nfa.start}, start == 0,
                               start == n)
        best: Optional[int] = (
            start if self._nfa.accept in states else None
        )
        pos = start
        while pos < n and states:
            byte = text[pos]
            moved: Set[int] = set()
            for state in states:
                for label, dst in self._nfa.transitions[state]:
                    if isinstance(label, frozenset) and byte in label:
                        moved.add(dst)
            pos += 1
            states = self._closure(moved, False, pos == n)
            if self._nfa.accept in states:
                best = pos
        return best

    def search(self, text) -> Optional[Tuple[int, int]]:
        """First (leftmost-longest) match as ``(start, end)``."""
        if isinstance(text, str):
            text = text.encode()
        for start in range(len(text) + 1):
            end = self.match_at(text, start)
            if end is not None:
                return (start, end)
        return None

    def findall(self, text) -> List[Tuple[int, int]]:
        """All non-overlapping matches, leftmost-longest."""
        if isinstance(text, str):
            text = text.encode()
        out: List[Tuple[int, int]] = []
        pos = 0
        while pos <= len(text):
            found = None
            for start in range(pos, len(text) + 1):
                end = self.match_at(text, start)
                if end is not None:
                    found = (start, end)
                    break
            if found is None:
                break
            out.append(found)
            pos = found[1] if found[1] > found[0] else found[0] + 1
        return out

    def count(self, text) -> int:
        """Number of non-overlapping matches."""
        return len(self.findall(text))

    def __repr__(self) -> str:
        return f"Pattern({self.pattern!r})"


def compile_pattern(pattern) -> Pattern:
    """Compile ``pattern`` (str or bytes) into a :class:`Pattern`."""
    return Pattern(pattern)


def search(pattern, text) -> Optional[Tuple[int, int]]:
    """One-shot search; see :meth:`Pattern.search`."""
    return Pattern(pattern).search(text)


def findall(pattern, text) -> List[Tuple[int, int]]:
    """One-shot findall; see :meth:`Pattern.findall`."""
    return Pattern(pattern).findall(text)
