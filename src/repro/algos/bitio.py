"""Bit-level I/O in DEFLATE's LSB-first order (RFC 1951 §3.1.1)."""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Packs bits least-significant-first into a byte stream.

    Bits accumulate in one int and are flushed to the output eight
    bytes at a time (``int.to_bytes``), instead of a Python-level loop
    appending one byte per eight bits — the dominant cost when emitting
    millions of Huffman codes.
    """

    __slots__ = ("_out", "_bitbuf", "_bitcount")

    def __init__(self):
        self._out = bytearray()
        self._bitbuf = 0
        self._bitcount = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low ``nbits`` of ``value``, LSB first."""
        if nbits < 0:
            raise ValueError(f"negative bit count {nbits}")
        if value < 0 or (nbits < 63 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._bitbuf |= value << self._bitcount
        self._bitcount += nbits
        if self._bitcount >= 64:
            self._out.extend(
                (self._bitbuf & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
            )
            self._bitbuf >>= 64
            self._bitcount -= 64

    def write_huffman_code(self, code: int, nbits: int) -> None:
        """Write a Huffman code, which DEFLATE packs MSB-first."""
        reversed_code = 0
        for _ in range(nbits):
            reversed_code = (reversed_code << 1) | (code & 1)
            code >>= 1
        self.write_bits(reversed_code, nbits)

    def _drain_whole_bytes(self) -> None:
        nbytes = self._bitcount >> 3
        if nbytes:
            nbits = nbytes << 3
            self._out.extend(
                (self._bitbuf & ((1 << nbits) - 1)).to_bytes(
                    nbytes, "little"
                )
            )
            self._bitbuf >>= nbits
            self._bitcount -= nbits

    def align_to_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        self._drain_whole_bytes()
        if self._bitcount:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf = 0
            self._bitcount = 0

    def write_bytes(self, data: bytes) -> None:
        """Write whole bytes (must be byte-aligned)."""
        if self._bitcount & 7:
            raise ValueError("write_bytes requires byte alignment")
        self._drain_whole_bytes()
        self._out.extend(data)

    def getvalue(self) -> bytes:
        """Finish the stream (flushing a partial byte) and return it."""
        self.align_to_byte()
        return bytes(self._out)


class BitReader:
    """Reads bits least-significant-first from a byte stream."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._bitbuf = 0
        self._bitcount = 0

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` (LSB-first) as an integer."""
        if nbits < 0:
            raise ValueError(f"negative bit count {nbits}")
        while self._bitcount < nbits:
            if self._pos >= len(self._data):
                raise EOFError("bit stream exhausted")
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount -= nbits
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        self._bitbuf = 0
        self._bitcount = 0

    def read_bytes(self, count: int) -> bytes:
        """Read whole bytes (must be byte-aligned)."""
        if self._bitcount:
            raise ValueError("read_bytes requires byte alignment")
        if self._pos + count > len(self._data):
            raise EOFError("byte stream exhausted")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return bytes(chunk)

    @property
    def exhausted(self) -> bool:
        """True when no complete byte and no buffered bits remain."""
        return self._pos >= len(self._data) and self._bitcount == 0
