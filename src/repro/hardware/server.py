"""Server assembly: a host machine, optionally with a DPU, plus SSDs.

:func:`make_server` is the main entry point used by examples, tests,
and benchmarks.  Two relevant shapes:

* ``make_server(env, dpu_profile=BLUEFIELD2)`` — the paper's target: a
  host whose NIC *is* the DPU, with SSDs reachable from both the host
  (via the OS storage stack) and the DPU (via PCIe peer-to-peer).
* ``make_server(env, dpu_profile=None)`` — a conventional server used
  by the baselines; it gets a plain (non-programmable) NIC.

``connect(a, b)`` wires two servers back-to-back, which is all the
paper's single-link experiments need.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment
from ..units import Gbps
from .costs import CostModel, default_cost_model
from .cpu import CpuCluster
from .dpu import Dpu
from .memory import MemoryRegion
from .nic import Nic, Wire
from .profiles import DpuProfile, EPYC_HOST, HostProfile
from .ssd import Ssd, SsdSpec

__all__ = ["Server", "make_server", "connect"]


class Server:
    """A host (plus optional DPU) with local SSDs."""

    def __init__(self, env: Environment, name: str,
                 host_profile: HostProfile,
                 dpu: Optional[Dpu],
                 ssds: List[Ssd],
                 costs: CostModel,
                 plain_nic_bandwidth_bps: float = 100 * Gbps,
                 peers: Optional[List["PeerAccelerator"]] = None):
        self.env = env
        self.name = name
        self.host_profile = host_profile
        self.costs = costs
        self.host_cpu = CpuCluster(
            env, host_profile.cores, host_profile.frequency_hz,
            name=f"{name}.host_cpu", cpu_class="host",
        )
        self.host_memory = MemoryRegion(
            env, host_profile.memory_bytes, name=f"{name}.host_mem"
        )
        self.dpu = dpu
        self.ssds = ssds
        #: PCIe peer accelerators (GPUs/FPGAs), keyed by kind.
        self.peers = {peer.kind: peer for peer in (peers or [])}
        if dpu is not None:
            # The server's network port is the DPU's NIC.
            self.nic = dpu.nic
        else:
            self.nic = Nic(env, plain_nic_bandwidth_bps,
                           name=f"{name}.nic")

    @property
    def has_dpu(self) -> bool:
        return self.dpu is not None

    def ssd(self, index: int = 0) -> Ssd:
        """The ``index``-th local SSD."""
        return self.ssds[index]

    def peer(self, kind: str):
        """The PCIe peer accelerator of ``kind``, or None."""
        return self.peers.get(kind)

    def cpu_for(self, location: str) -> CpuCluster:
        """Resolve ``"host"`` / ``"dpu"`` to the matching CPU cluster."""
        if location == "host":
            return self.host_cpu
        if location == "dpu":
            if self.dpu is None:
                raise ValueError(f"{self.name} has no DPU")
            return self.dpu.cpu
        raise ValueError(f"unknown CPU location {location!r}")

    def __repr__(self) -> str:
        dpu_part = self.dpu.name if self.dpu else "no-dpu"
        return (
            f"Server({self.name}: host={self.host_profile.name}, "
            f"dpu={dpu_part}, ssds={len(self.ssds)})"
        )


def make_server(env: Environment, name: str = "server",
                host_profile: HostProfile = EPYC_HOST,
                dpu_profile: Optional[DpuProfile] = None,
                ssd_count: int = 1,
                ssd_spec: Optional[SsdSpec] = None,
                costs: Optional[CostModel] = None,
                peer_specs=()) -> Server:
    """Build a server with the given host, DPU SKU, and SSD complement.

    ``peer_specs`` adds PCIe peer accelerators (GPU/FPGA), e.g.
    ``peer_specs=(GPU_SPEC,)``.
    """
    from .peer import PeerAccelerator

    if ssd_count < 0:
        raise ValueError("ssd_count cannot be negative")
    costs = costs or default_cost_model()
    dpu = (
        Dpu(env, dpu_profile, name=f"{name}.dpu")
        if dpu_profile is not None else None
    )
    ssds = [
        Ssd(env, ssd_spec, name=f"{name}.ssd{i}")
        for i in range(ssd_count)
    ]
    peers = [
        PeerAccelerator(env, spec, name=f"{name}.{spec.name}")
        for spec in peer_specs
    ]
    return Server(env, name, host_profile, dpu, ssds, costs,
                  peers=peers)


def connect(server_a: Server, server_b: Server,
            propagation_delay_s: float = 2e-6) -> Wire:
    """Wire two servers' network ports together (point to point)."""
    if server_a.env is not server_b.env:
        raise ValueError("servers belong to different simulations")
    return Wire(server_a.env, server_a.nic, server_b.nic,
                propagation_delay_s)


def attach_to_switch(switch, *servers: Server) -> None:
    """Attach servers to a switch, addressed by their names."""
    for server in servers:
        switch.attach(server.nic, server.name)
