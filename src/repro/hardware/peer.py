"""PCIe peer accelerators: GPUs and FPGAs (paper Section 5, last
open challenge).

"DPDPU CE can be further augmented when additional common data center
accelerators such as FPGAs and GPUs are connected via PCIe … it makes
sense to fuse multiple DP kernels inside the accelerator to minimize
execution latency."

A :class:`PeerAccelerator` is a device on the server's PCIe fabric
reachable from the DPU via peer-to-peer: it executes a declared set of
DP kernels at per-kernel streaming rates, with a comparatively large
per-job launch latency (kernel launch / FPGA invocation) and many
concurrent channels.  The launch latency is exactly what kernel
*fusion* amortizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sim import Environment, Resource
from ..sim.stats import Counter, Tally
from ..units import GB

__all__ = ["PeerAcceleratorSpec", "PeerAccelerator", "GPU_SPEC",
           "FPGA_SPEC"]


@dataclass(frozen=True)
class PeerAcceleratorSpec:
    """Static description of a PCIe peer device."""

    kind: str                         # "gpu" or "fpga"
    name: str
    #: kernel name -> streaming rate (bytes/s) on this device.
    kernel_rates: Tuple[Tuple[str, float], ...]
    launch_latency_s: float = 12e-6
    channels: int = 8

    def __post_init__(self):
        if self.kind not in ("gpu", "fpga"):
            raise ValueError(f"unknown peer kind {self.kind!r}")
        if self.launch_latency_s < 0 or self.channels < 1:
            raise ValueError("invalid peer accelerator parameters")
        for kernel_name, rate in self.kernel_rates:
            if rate <= 0:
                raise ValueError(
                    f"non-positive rate for kernel {kernel_name!r}"
                )

    def rate_for(self, kernel_name: str) -> Optional[float]:
        """Streaming rate for a kernel, or None if unsupported."""
        for name, rate in self.kernel_rates:
            if name == kernel_name:
                return rate
        return None

    def supports(self, kernel_name: str) -> bool:
        """Whether this device implements the kernel."""
        return self.rate_for(kernel_name) is not None


#: A data-center GPU (A100-class rates for data-path kernels).
GPU_SPEC = PeerAcceleratorSpec(
    kind="gpu",
    name="gpu",
    kernel_rates=(
        ("compress", 12.0 * GB),
        ("decompress", 30.0 * GB),
        ("encrypt", 40.0 * GB),
        ("decrypt", 40.0 * GB),
        ("filter", 50.0 * GB),
        ("aggregate", 60.0 * GB),
        ("project", 60.0 * GB),
        ("regex", 10.0 * GB),
        ("crc32", 80.0 * GB),
    ),
    launch_latency_s=12e-6,
    channels=8,
)

#: A mid-size FPGA card (lower rates, lower launch latency).
FPGA_SPEC = PeerAcceleratorSpec(
    kind="fpga",
    name="fpga",
    kernel_rates=(
        ("compress", 6.0 * GB),
        ("decompress", 12.0 * GB),
        ("encrypt", 20.0 * GB),
        ("decrypt", 20.0 * GB),
        ("regex", 8.0 * GB),
        ("dedup", 8.0 * GB),
        ("crc32", 40.0 * GB),
    ),
    launch_latency_s=5e-6,
    channels=4,
)


class PeerAccelerator:
    """A running PCIe peer device instance."""

    def __init__(self, env: Environment, spec: PeerAcceleratorSpec,
                 name: Optional[str] = None):
        self.env = env
        self.spec = spec
        self.kind = spec.kind
        self.name = name or spec.name
        self._channels = Resource(env, capacity=spec.channels,
                                  name=self.name)
        self.jobs = Counter(f"{self.name}.jobs")
        self.bytes_in = Counter(f"{self.name}.bytes")
        self.job_latency = Tally(f"{self.name}.latency")

    def supports(self, kernel_name: str) -> bool:
        """Whether this device implements the kernel."""
        return self.spec.supports(kernel_name)

    def service_time(self, kernel_name: str, nbytes: int) -> float:
        """Execution time for one kernel job (launch + streaming)."""
        return self.chain_service_time([(kernel_name, nbytes)])

    def chain_service_time(self, stages) -> float:
        """Execution time for a fused chain of ``(kernel, nbytes)``.

        One launch covers the whole chain; each stage streams its own
        input size at its own rate.  Unsupported kernels raise
        ``KeyError``.
        """
        total = self.spec.launch_latency_s
        for kernel_name, nbytes in stages:
            rate = self.spec.rate_for(kernel_name)
            if rate is None:
                raise KeyError(
                    f"{self.name} does not implement {kernel_name!r}"
                )
            total += nbytes / rate
        return total

    def run_job(self, kernel_name: str, nbytes: int):
        """Execute one kernel job (generator)."""
        yield from self.run_chain([(kernel_name, nbytes)])

    def run_chain(self, stages):
        """Execute a fused chain of ``(kernel, nbytes)`` (generator)."""
        started = self.env.now
        with self._channels.request() as request:
            yield request
            yield self.env.timeout(self.chain_service_time(stages))
        self.jobs.add(1)
        self.bytes_in.add(stages[0][1] if stages else 0)
        self.job_latency.observe(self.env.now - started)

    @property
    def busy_channels(self) -> int:
        return self._channels.count

    def __repr__(self) -> str:
        return f"PeerAccelerator({self.name}, kind={self.kind})"
