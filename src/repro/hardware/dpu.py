"""DPU SoC assembly.

A :class:`Dpu` instantiates the live devices described by a
:class:`~repro.hardware.profiles.DpuProfile`: the Arm CPU cluster,
onboard memory, the ASIC accelerators that exist on that SKU, the NIC,
and the PCIe link plus DMA engine toward the host.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Environment
from .accelerator import Accelerator
from .cpu import CpuCluster
from .memory import MemoryRegion
from .nic import Nic
from .pcie import DmaEngine, PcieLink
from .profiles import DpuProfile

__all__ = ["Dpu"]


class Dpu:
    """A running DPU instance inside a simulation."""

    def __init__(self, env: Environment, profile: DpuProfile,
                 name: Optional[str] = None):
        self.env = env
        self.profile = profile
        self.name = name or profile.name
        self.cpu = CpuCluster(
            env, profile.arm_cores, profile.arm_frequency_hz,
            name=f"{self.name}.cpu", cpu_class="dpu",
        )
        self.memory = MemoryRegion(
            env, profile.memory_bytes, name=f"{self.name}.mem"
        )
        self.nic = Nic(
            env, profile.nic_bandwidth_bps, name=f"{self.name}.nic"
        )
        self.pcie = PcieLink(
            env, profile.pcie_bandwidth_bps, name=f"{self.name}.pcie"
        )
        self.dma = DmaEngine(env, self.pcie, name=f"{self.name}.dma")
        self.accelerators: Dict[str, Accelerator] = {
            spec.kind: Accelerator(env, spec,
                                   name=f"{self.name}.{spec.kind}")
            for spec in profile.accelerators
        }

    def accelerator(self, kind: str) -> Optional[Accelerator]:
        """The live accelerator of ``kind``, or None if this SKU lacks it."""
        return self.accelerators.get(kind)

    def has_accelerator(self, kind: str) -> bool:
        """Whether this DPU instance has an ASIC of ``kind``."""
        return kind in self.accelerators

    def __repr__(self) -> str:
        asics = ", ".join(sorted(self.accelerators)) or "none"
        return (
            f"Dpu({self.name}: {self.profile.arm_cores} cores, "
            f"asics=[{asics}])"
        )
