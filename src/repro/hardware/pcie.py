"""PCIe fabric and DMA engine models.

The DPU reaches host memory and peer devices (SSDs, GPUs) through a
PCIe switch.  Two models live here:

* :class:`PcieLink` — a bidirectional link with per-transfer latency
  and a serialization bandwidth shared by all transfers in the same
  direction (modelled with one queue per direction).
* :class:`DmaEngine` — the DPU's DMA block: a handful of channels that
  move bytes across a :class:`PcieLink` asynchronously, which is how
  the NE/SE lazily pull request descriptors and payloads from host
  ring buffers without host CPU involvement.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment, Resource
from ..sim.stats import Counter

__all__ = ["PcieLink", "DmaEngine"]


class PcieLink:
    """A PCIe point-to-point link (e.g. DPU <-> host root complex)."""

    def __init__(self, env: Environment, bandwidth_bps: float,
                 latency_s: float = 600e-9, name: str = "pcie"):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency cannot be negative")
        self.env = env
        self.bandwidth_bytes_per_s = bandwidth_bps / 8.0
        self.latency_s = latency_s
        self.name = name
        # Independent serialization queues per direction (full duplex).
        self._tx = Resource(env, capacity=1, name=f"{name}.tx")
        self._rx = Resource(env, capacity=1, name=f"{name}.rx")
        self.bytes_moved = Counter(f"{name}.bytes")

    def _pipe(self, direction: str) -> Resource:
        if direction == "to_host":
            return self._tx
        if direction == "to_device":
            return self._rx
        raise ValueError(f"unknown direction {direction!r}")

    def transfer_time(self, nbytes: int) -> float:
        """Serialization time for ``nbytes`` (excludes latency/queueing)."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return nbytes / self.bandwidth_bytes_per_s

    def transfer(self, nbytes: int, direction: str = "to_host"):
        """Move ``nbytes`` across the link (generator).

        Total time = queueing + propagation latency + serialization.
        """
        pipe = self._pipe(direction)
        duration = self.latency_s + self.transfer_time(nbytes)
        hold = pipe.hold(duration)
        if hold is not None:
            yield hold
        else:
            with pipe.request() as req:
                yield req
                yield self.env.timeout(duration)
        self.bytes_moved.add(nbytes)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean busy fraction across both directions."""
        return (self._tx.utilization(elapsed) +
                self._rx.utilization(elapsed)) / 2.0


class DmaEngine:
    """The DPU's asynchronous DMA block.

    ``copy()`` moves a payload over the attached link using one of the
    engine's channels; no CPU cycles are charged to either side beyond
    the descriptor programming the *caller* accounts separately.  This
    is the mechanism that lets the DPU poll host ring buffers "lazily"
    (Sections 6 and 7).
    """

    def __init__(self, env: Environment, link: PcieLink,
                 channels: int = 4, setup_latency_s: float = 0.8e-6,
                 name: str = "dma"):
        if channels < 1:
            raise ValueError("need at least one DMA channel")
        self.env = env
        self.link = link
        self.setup_latency_s = setup_latency_s
        self.name = name
        self._channels = Resource(env, capacity=channels, name=name)
        self.copies = Counter(f"{name}.copies")
        self.bytes_copied = Counter(f"{name}.bytes")

    def copy(self, nbytes: int, direction: str = "to_device"):
        """DMA ``nbytes`` across the link (generator).

        Hot path: with a free channel and an idle pipe, the setup
        latency, link latency, and serialization collapse into one
        timeout — the channel hold *is* the wake-up, and the pipe is
        reserved eventlessly for the serialization interval (shifted
        earlier by the sub-microsecond setup time; same busy total).
        """
        link = self.link
        pipe = link._pipe(direction)
        link_time = link.latency_s + link.transfer_time(nbytes)
        total = self.setup_latency_s + link_time
        hold = self._channels.hold(total)
        if hold is not None:
            if pipe.reserve(link_time):
                yield hold
                link.bytes_moved.add(nbytes)
                self.copies.add(1)
                self.bytes_copied.add(nbytes)
                return
            self._channels.unhold(hold)
        with self._channels.request() as req:
            yield req
            yield self.env.timeout(self.setup_latency_s)
            yield from link.transfer(nbytes, direction)
        self.copies.add(1)
        self.bytes_copied.add(nbytes)

    @property
    def busy_channels(self) -> int:
        return self._channels.count
