"""Hardware device models and DPU SKU profiles.

Everything performance-related is calibrated in
:mod:`repro.hardware.costs`; SKU differences (which ASICs exist, core
counts, NIC rates) live in :mod:`repro.hardware.profiles`.
"""

from .accelerator import Accelerator, AcceleratorSpec
from .costs import (
    CostModel,
    DEFAULT_COSTS,
    KernelCost,
    SoftwarePathCosts,
    default_cost_model,
)
from .cpu import CpuCluster, DedicatedCore
from .dpu import Dpu
from .memory import Allocation, MemoryRegion
from .nic import FlowRule, FlowTable, Nic, Wire
from .pcie import DmaEngine, PcieLink
from .peer import FPGA_SPEC, GPU_SPEC, PeerAccelerator, PeerAcceleratorSpec
from .profiles import (
    ARM_HOST,
    BLUEFIELD2,
    BLUEFIELD3,
    DPU_PROFILES,
    DpuProfile,
    EPYC_HOST,
    GENERIC_DPU,
    HostProfile,
    INTEL_IPU,
)
from .server import Server, attach_to_switch, connect, make_server
from .switch import Switch
from .ssd import Ssd, SsdSpec

__all__ = [
    "Accelerator",
    "AcceleratorSpec",
    "CostModel",
    "DEFAULT_COSTS",
    "KernelCost",
    "SoftwarePathCosts",
    "default_cost_model",
    "CpuCluster",
    "DedicatedCore",
    "Dpu",
    "Allocation",
    "MemoryRegion",
    "FlowRule",
    "FlowTable",
    "Nic",
    "Wire",
    "DmaEngine",
    "PcieLink",
    "FPGA_SPEC",
    "GPU_SPEC",
    "PeerAccelerator",
    "PeerAcceleratorSpec",
    "ARM_HOST",
    "BLUEFIELD2",
    "BLUEFIELD3",
    "DPU_PROFILES",
    "DpuProfile",
    "EPYC_HOST",
    "GENERIC_DPU",
    "HostProfile",
    "INTEL_IPU",
    "Server",
    "Switch",
    "attach_to_switch",
    "connect",
    "make_server",
    "Ssd",
    "SsdSpec",
]
