"""Memory region model.

Models *capacity*, not contents: the DPU's 16 GB of onboard DRAM is the
binding constraint in Section 7 ("log replay can consume 100s of GB …
an order of magnitude larger than DPU memory"), so what matters is who
allocated how much, and what happens when an allocation does not fit.

Allocations can be blocking (``yield region.allocate(n)`` waits for
space) or immediate (``try_allocate`` returns False when full) — the SE
offload engine uses the latter to decide host fallback.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CapacityError
from ..sim import Container, Environment
from ..sim.stats import Counter

__all__ = ["MemoryRegion", "Allocation"]


class Allocation:
    """A live claim on part of a :class:`MemoryRegion`."""

    __slots__ = ("region", "nbytes", "tag", "freed")

    def __init__(self, region: "MemoryRegion", nbytes: int, tag: str):
        self.region = region
        self.nbytes = nbytes
        self.tag = tag
        self.freed = False

    def free(self) -> None:
        """Return the bytes to the region (idempotent)."""
        if not self.freed:
            self.freed = True
            self.region._release(self.nbytes)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.free()

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"Allocation({self.nbytes} bytes, {self.tag!r}, {state})"


class MemoryRegion:
    """A fixed-capacity pool of bytes with allocation accounting."""

    def __init__(self, env: Environment, capacity_bytes: int,
                 name: str = "memory"):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self._free = Container(env, capacity=capacity_bytes,
                               init=capacity_bytes, name=name)
        self.alloc_count = Counter(f"{name}.allocs")
        self.alloc_failures = Counter(f"{name}.alloc_failures")
        self._peak_used = 0

    @property
    def used_bytes(self) -> int:
        return self.capacity_bytes - int(self._free.level)

    @property
    def free_bytes(self) -> int:
        return int(self._free.level)

    @property
    def peak_used_bytes(self) -> int:
        return self._peak_used

    def fits(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would succeed right now."""
        return 0 <= nbytes <= self.free_bytes

    def try_allocate(self, nbytes: int,
                     tag: str = "") -> Optional[Allocation]:
        """Allocate without blocking; ``None`` if it does not fit."""
        self._validate(nbytes)
        if not self.fits(nbytes):
            self.alloc_failures.add(1)
            return None
        if nbytes > 0:
            # Container.get succeeds synchronously when level suffices.
            self._free.get(nbytes)
        return self._record(nbytes, tag)

    def allocate(self, nbytes: int, tag: str = ""):
        """Blocking allocation (generator): waits until space frees up."""
        self._validate(nbytes)
        if nbytes > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: {nbytes} bytes exceeds region capacity "
                f"{self.capacity_bytes}"
            )
        if nbytes > 0:
            yield self._free.get(nbytes)
        return self._record(nbytes, tag)

    def _record(self, nbytes: int, tag: str) -> Allocation:
        self.alloc_count.add(1)
        self._peak_used = max(self._peak_used, self.used_bytes)
        return Allocation(self, nbytes, tag)

    def _release(self, nbytes: int) -> None:
        if nbytes > 0:
            self._free.put(nbytes)

    @staticmethod
    def _validate(nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")

    def __repr__(self) -> str:
        return (
            f"MemoryRegion({self.name}: {self.used_bytes}/"
            f"{self.capacity_bytes} bytes used)"
        )
