"""Hardware SKU profiles: DPU models and host machines.

Section 3 of the paper characterizes DPU resources into five types
(CPU cores, onboard memory, accelerators, network interfaces, PCIe);
Challenge #3 is that the *instantiations* differ per vendor — e.g.
BlueField-2 has a RegEx engine that BlueField-3 and Intel IPU lack.
A :class:`DpuProfile` captures exactly those per-SKU differences, and
the DPDPU engines consume only the profile, never vendor specifics —
that is the portability contract this reproduction tests in the
A2 ablation.

Figures are taken from public datasheets / product briefs; accelerator
rates are representative (the paper only relies on order-of-magnitude
relationships, e.g. the BF-2 compression ASIC being ~10x a host core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..units import GHZ, GiB, Gbps, GB
from .accelerator import AcceleratorSpec

__all__ = [
    "DpuProfile",
    "HostProfile",
    "BLUEFIELD2",
    "BLUEFIELD3",
    "INTEL_IPU",
    "GENERIC_DPU",
    "EPYC_HOST",
    "ARM_HOST",
    "DPU_PROFILES",
]


@dataclass(frozen=True)
class HostProfile:
    """A host server's CPU and memory complement."""

    name: str
    cores: int
    frequency_hz: float
    memory_bytes: int

    def __post_init__(self):
        if self.cores < 1 or self.frequency_hz <= 0 or self.memory_bytes <= 0:
            raise ValueError(f"invalid host profile {self.name!r}")


@dataclass(frozen=True)
class DpuProfile:
    """One DPU SKU: its resources and capabilities."""

    name: str
    vendor: str
    arm_cores: int
    arm_frequency_hz: float
    memory_bytes: int
    nic_bandwidth_bps: float
    pcie_bandwidth_bps: float
    accelerators: Tuple[AcceleratorSpec, ...] = ()
    #: Whether the SKU supports generic code offloading to NIC cores
    #: (BlueField-3 does; most others only do match-action offload).
    generic_code_offload: bool = False

    def __post_init__(self):
        if self.arm_cores < 1 or self.arm_frequency_hz <= 0:
            raise ValueError(f"invalid core spec on {self.name!r}")
        if self.memory_bytes <= 0:
            raise ValueError(f"invalid memory on {self.name!r}")
        kinds = [spec.kind for spec in self.accelerators]
        if len(kinds) != len(set(kinds)):
            raise ValueError(f"duplicate accelerator kinds on {self.name!r}")

    def accelerator_spec(self, kind: str) -> Optional[AcceleratorSpec]:
        """The spec for accelerator ``kind``, or None if absent."""
        for spec in self.accelerators:
            if spec.kind == kind:
                return spec
        return None

    def has_accelerator(self, kind: str) -> bool:
        """Whether this SKU ships an ASIC of ``kind``."""
        return self.accelerator_spec(kind) is not None


#: NVIDIA BlueField-2: the paper's Figure 4 reference part.
#: 8x Arm A72 @ 2.5 GHz, 16 GB DDR4, ConnectX-6 100 Gbps, PCIe 4.0,
#: compression/encryption/RegEx/dedup ASICs.
BLUEFIELD2 = DpuProfile(
    name="bluefield2",
    vendor="nvidia",
    arm_cores=8,
    arm_frequency_hz=2.5 * GHZ,
    memory_bytes=16 * GiB,
    nic_bandwidth_bps=100 * Gbps,
    pcie_bandwidth_bps=256 * Gbps,       # PCIe 4.0 x16
    accelerators=(
        AcceleratorSpec("compression", throughput_bytes_per_s=1.6 * GB,
                        setup_latency_s=30e-6, channels=2),
        AcceleratorSpec("encryption", throughput_bytes_per_s=8.0 * GB,
                        setup_latency_s=12e-6, channels=4),
        AcceleratorSpec("regex", throughput_bytes_per_s=3.5 * GB,
                        setup_latency_s=20e-6, channels=2),
        AcceleratorSpec("dedup", throughput_bytes_per_s=4.0 * GB,
                        setup_latency_s=18e-6, channels=2),
    ),
)

#: NVIDIA BlueField-3: more/faster cores, no RegEx engine (the paper's
#: own heterogeneity example), generic code offload supported.
BLUEFIELD3 = DpuProfile(
    name="bluefield3",
    vendor="nvidia",
    arm_cores=16,
    arm_frequency_hz=3.0 * GHZ,
    memory_bytes=32 * GiB,
    nic_bandwidth_bps=400 * Gbps,
    pcie_bandwidth_bps=512 * Gbps,       # PCIe 5.0 x16
    accelerators=(
        AcceleratorSpec("compression", throughput_bytes_per_s=4.0 * GB,
                        setup_latency_s=22e-6, channels=4),
        AcceleratorSpec("encryption", throughput_bytes_per_s=16.0 * GB,
                        setup_latency_s=10e-6, channels=4),
        AcceleratorSpec("dedup", throughput_bytes_per_s=6.0 * GB,
                        setup_latency_s=15e-6, channels=2),
    ),
    generic_code_offload=True,
)

#: Intel IPU (Mount Evans class): Neoverse cores, crypto + compression,
#: no RegEx and no dedup engine.
INTEL_IPU = DpuProfile(
    name="intel-ipu",
    vendor="intel",
    arm_cores=16,
    arm_frequency_hz=3.0 * GHZ,
    memory_bytes=48 * GiB,
    nic_bandwidth_bps=200 * Gbps,
    pcie_bandwidth_bps=256 * Gbps,
    accelerators=(
        AcceleratorSpec("compression", throughput_bytes_per_s=3.0 * GB,
                        setup_latency_s=25e-6, channels=2),
        AcceleratorSpec("encryption", throughput_bytes_per_s=12.0 * GB,
                        setup_latency_s=10e-6, channels=4),
    ),
)

#: A minimal SmartNIC with CPU cores only — exercises every ASIC
#: fallback path in the Compute Engine.
GENERIC_DPU = DpuProfile(
    name="generic-dpu",
    vendor="generic",
    arm_cores=4,
    arm_frequency_hz=2.0 * GHZ,
    memory_bytes=8 * GiB,
    nic_bandwidth_bps=100 * Gbps,
    pcie_bandwidth_bps=128 * Gbps,
    accelerators=(),
)

DPU_PROFILES = {
    profile.name: profile
    for profile in (BLUEFIELD2, BLUEFIELD3, INTEL_IPU, GENERIC_DPU)
}

#: The paper's host: an AMD EPYC class server.
EPYC_HOST = HostProfile(
    name="epyc",
    cores=64,
    frequency_hz=3.0 * GHZ,
    memory_bytes=256 * GiB,
)

#: The standalone Arm server used in Figure 1's CPU comparison.
ARM_HOST = HostProfile(
    name="arm",
    cores=32,
    frequency_hz=2.5 * GHZ,
    memory_bytes=128 * GiB,
)
