"""NVMe SSD model.

Calibrated so that one device saturates around 430–460 K 8 KiB reads/s
— the range where the paper's Figure 2 sweep tops out:

* per-command access latency (flash read / program, FTL),
* a shared transfer stage whose bandwidth caps aggregate throughput
  (3.7 GB/s read => 8 KiB / 3.7 GB/s = 2.2 us/page => ~452 K pages/s),
* a bounded NVMe submission queue (``queue_depth`` in-flight commands).

Access latency overlaps across queued commands; only the transfer
stage serializes, like a real device's channel/bus contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import FaultInjectedError
from ..sim import Environment, Resource
from ..sim.stats import Counter, Tally
from ..units import GB, US

__all__ = ["SsdSpec", "Ssd"]


@dataclass(frozen=True)
class SsdSpec:
    """Static NVMe device parameters."""

    read_latency_s: float = 78 * US
    write_latency_s: float = 24 * US
    read_bandwidth_bps: float = 3.7 * GB * 8
    write_bandwidth_bps: float = 3.1 * GB * 8
    queue_depth: int = 128

    def __post_init__(self):
        if min(self.read_latency_s, self.write_latency_s) < 0:
            raise ValueError("latencies cannot be negative")
        if min(self.read_bandwidth_bps, self.write_bandwidth_bps) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")


class Ssd:
    """A running NVMe device instance."""

    def __init__(self, env: Environment, spec: Optional[SsdSpec] = None,
                 name: str = "ssd"):
        self.env = env
        self.spec = spec or SsdSpec()
        self.name = name
        self._queue = Resource(env, capacity=self.spec.queue_depth,
                               name=f"{name}.sq")
        self._read_xfer = Resource(env, capacity=1, name=f"{name}.rchan")
        self._write_xfer = Resource(env, capacity=1, name=f"{name}.wchan")
        self.reads = Counter(f"{name}.reads")
        self.writes = Counter(f"{name}.writes")
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.bytes_written = Counter(f"{name}.bytes_written")
        self.read_latency = Tally(f"{name}.read_latency")
        self.write_latency = Tally(f"{name}.write_latency")
        #: optional FaultInjector; sites ssd.<name>.read / ssd.<name>.write
        self.injector = None
        self.faults = Counter(f"{name}.faults")

    # -- device operations ---------------------------------------------------

    def read(self, nbytes: int):
        """Read ``nbytes`` (generator completing when data is in memory)."""
        yield from self._io(nbytes, is_write=False)

    def write(self, nbytes: int):
        """Write ``nbytes`` (generator completing at durability)."""
        yield from self._io(nbytes, is_write=True)

    def _io(self, nbytes: int, is_write: bool):
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        if self.injector is not None:
            site = f"ssd.{self.name}.{'write' if is_write else 'read'}"
            try:
                yield from self.injector.perturb(site)
            except FaultInjectedError:
                self.faults.add(1)
                raise
        start = self.env.now
        spec = self.spec
        if is_write:
            access, xfer, bandwidth = (
                spec.write_latency_s, self._write_xfer,
                spec.write_bandwidth_bps / 8.0,
            )
        else:
            access, xfer, bandwidth = (
                spec.read_latency_s, self._read_xfer,
                spec.read_bandwidth_bps / 8.0,
            )
        transfer = nbytes / bandwidth
        # Hot path: a free command slot is claimed without a request
        # event, and an uncontended channel fuses acquire + transfer +
        # release into one scheduler entry (identical busy intervals).
        token = self._queue.try_acquire()
        if token is not None:
            try:
                # Flash access overlaps across commands in the queue.
                yield self.env.timeout(access)
                # Channel transfer serializes; the throughput cap.
                hold = xfer.hold(transfer)
                if hold is not None:
                    yield hold
                else:
                    with xfer.request() as chan:
                        yield chan
                        yield self.env.timeout(transfer)
            finally:
                self._queue.release(token)
        else:
            with self._queue.request() as slot:
                yield slot
                yield self.env.timeout(access)
                with xfer.request() as chan:
                    yield chan
                    yield self.env.timeout(transfer)
        elapsed = self.env.now - start
        if is_write:
            self.writes.add(1)
            self.bytes_written.add(nbytes)
            self.write_latency.observe(elapsed)
        else:
            self.reads.add(1)
            self.bytes_read.add(nbytes)
            self.read_latency.observe(elapsed)

    # -- capacity planning -----------------------------------------------------

    def max_read_iops(self, io_size: int) -> float:
        """Transfer-stage throughput ceiling for ``io_size`` reads."""
        return (self.spec.read_bandwidth_bps / 8.0) / io_size

    @property
    def inflight(self) -> int:
        return self._queue.count

    def __repr__(self) -> str:
        return f"Ssd({self.name}, qd={self.spec.queue_depth})"
