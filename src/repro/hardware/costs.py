"""Calibrated cost models for software paths and DP kernels.

The paper's evaluation hardware (EPYC hosts, BlueField-2 DPUs, NVMe
SSDs, 100 Gbps networks) is unavailable, so every performance number in
this reproduction comes from the cost tables below.  Each constant is
calibrated against a public reference; the paper's own Figures 1–3 pin
the most important ones:

* **Kernel block I/O** — Figure 2 reports ≈2.7 cores at 450 K 8 KB
  pages/s.  2.7 cores x 3 GHz / 450e3 = **18 000 cycles/page**, which is
  also consistent with Haas et al. (CIDR'20) for the Linux NVMe stack.
  io_uring is reported "similar"; SPDK-style userspace paths are
  roughly an order of magnitude cheaper.
* **Kernel TCP** — Figure 3 shows multi-core consumption approaching
  100 Gbps with 8 KB messages.  We charge a per-message cost (syscall,
  skb management) plus a per-byte cost (copies, checksums): 4 500 +
  1.1/byte, i.e. ≈13.5 K cycles per 8 KiB send — ≈7 host cores at
  100 Gbps, matching the figure's shape.
* **DEFLATE** — Figure 1 shows EPYC faster than Arm A72 and the BF-2
  compression ASIC an order of magnitude faster than both.  We encode
  20 cycles/byte on EPYC-class cores (≈150 MB/s at 3 GHz, a typical
  zlib-level-6 figure) and 55 cycles/byte on A72-class cores; the ASIC
  rates live in the per-DPU profiles (1.6 GB/s on BF-2).

All CPU costs are *cycles* so they scale with core frequency; all
accelerator costs are *bytes/second* plus a fixed job-setup latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = [
    "SoftwarePathCosts",
    "KernelCost",
    "CostModel",
    "DEFAULT_COSTS",
    "default_cost_model",
]


@dataclass(frozen=True)
class SoftwarePathCosts:
    """Per-operation CPU cycle costs of the software I/O paths."""

    # ---- storage paths (per 8 KiB page unless stated) ----
    #: Linux kernel block stack (syscall, VFS, block layer, NVMe driver).
    kernel_block_io_cycles_per_page: float = 18_000.0
    #: io_uring submission/completion path ("similar" per the paper).
    io_uring_cycles_per_page: float = 16_500.0
    #: SPDK-style userspace polled-mode driver.
    spdk_cycles_per_page: float = 2_200.0
    #: Host user-library cost to enqueue one file op to the DPU ring.
    file_frontend_cycles_per_op: float = 400.0
    #: DPU-side file-service cost per op (mapping lookup, SPDK submit).
    dpu_file_service_cycles_per_op: float = 2_600.0

    # ---- TCP paths ----
    #: Kernel TCP per-message overhead (syscall, skb alloc, timers).
    tcp_cycles_per_msg: float = 4_500.0
    #: Kernel TCP per-byte overhead (copy + checksum).
    tcp_cycles_per_byte: float = 1.1
    #: Host-side cost per message with the NE offloaded stack
    #: (lock-free ring write + amortized completion polling).
    offloaded_tcp_host_cycles_per_msg: float = 700.0
    #: Host per-byte cost with the offloaded stack (DMA-buffer copy).
    offloaded_tcp_host_cycles_per_byte: float = 0.15
    #: DPU-side per-message cost of the offloaded TCP stack.
    dpu_tcp_cycles_per_msg: float = 3_200.0
    #: DPU-side per-byte cost of the offloaded TCP stack.
    dpu_tcp_cycles_per_byte: float = 0.55

    # ---- RDMA paths ----
    #: Host cycles to issue one RDMA verb natively (QP lock, fences,
    #: doorbell MMIO stall) — cf. Cowbird's measurements.
    rdma_issue_cycles_per_op: float = 650.0
    #: Host cycles to poll one completion natively.
    rdma_poll_cycles_per_op: float = 150.0
    #: Host cycles to append a request to the NE lock-free ring.
    ring_write_cycles_per_op: float = 90.0
    #: Host cycles to consume one response from the NE ring.
    ring_read_cycles_per_op: float = 60.0
    #: DPU cycles to issue a verb on behalf of the host (poll + issue).
    dpu_rdma_issue_cycles_per_op: float = 900.0

    # ---- DMA / PCIe ----
    #: Cycles to program one DMA descriptor (either side).
    dma_descriptor_cycles: float = 200.0

    # ---- misc ----
    #: Per-request sproc dispatch overhead on a DPU core.
    sproc_dispatch_cycles: float = 1_500.0
    #: Per-request UDF parse cost in the SE offload engine.
    udf_parse_cycles: float = 800.0
    #: Added *latency* (not cycles) of interrupt-driven kernel paths:
    #: softirq wake-up on packet arrival plus blk-mq completion IRQ
    #: and context switch.  Polled userspace paths (SPDK/DPDK-style,
    #: i.e. everything the DPU runs) do not pay this — it is the
    #: latency component of Figure 8's "saved round trips".
    kernel_wakeup_latency_s: float = 10e-6


@dataclass(frozen=True)
class KernelCost:
    """Compute cost of one DP kernel on general-purpose cores.

    ASIC throughput is *not* here — it is a property of the specific
    accelerator instance (see :mod:`repro.hardware.profiles`) because
    it varies per DPU SKU; this record only names which accelerator
    kind can serve the kernel.
    """

    name: str
    #: cycles/byte on a host-class (EPYC) core.
    host_cycles_per_byte: float
    #: cycles/byte on a DPU-class (Arm A72) core.
    dpu_cycles_per_byte: float
    #: accelerator kind that can execute this kernel, if any.
    asic_kind: Optional[str] = None
    #: fixed per-invocation cycles on any CPU (call setup, buffers).
    base_cycles: float = 2_000.0


#: DP kernels shipped with the Compute Engine, with CPU cost models.
#: ASIC-side rates are in the DPU profiles.
DEFAULT_KERNEL_COSTS: Dict[str, KernelCost] = {
    kc.name: kc
    for kc in [
        # DEFLATE level-6-ish: 150 MB/s on a 3 GHz EPYC core,
        # 45 MB/s on a 2.5 GHz A72.
        KernelCost("compress", 20.0, 55.0, asic_kind="compression"),
        # INFLATE is ~3x cheaper than DEFLATE.
        KernelCost("decompress", 6.5, 18.0, asic_kind="compression"),
        # AES-128-CTR with AES-NI vs Arm crypto extensions.
        KernelCost("encrypt", 1.2, 2.8, asic_kind="encryption"),
        KernelCost("decrypt", 1.2, 2.8, asic_kind="encryption"),
        # Regex scan (DFA-style streaming match).
        KernelCost("regex", 10.0, 23.0, asic_kind="regex"),
        # Content-defined chunking + fingerprints.
        KernelCost("dedup", 6.0, 14.0, asic_kind="dedup"),
        # CRC32 (hardware CRC instructions on both).
        KernelCost("crc32", 0.375, 0.85, asic_kind=None),
        # Relational pushdown primitives: CPU-only kernels.
        KernelCost("filter", 2.0, 4.5, asic_kind=None,
                   base_cycles=3_000.0),
        KernelCost("aggregate", 1.6, 3.6, asic_kind=None,
                   base_cycles=3_000.0),
        KernelCost("project", 0.9, 2.0, asic_kind=None,
                   base_cycles=2_000.0),
    ]
}


@dataclass(frozen=True)
class CostModel:
    """The complete calibrated cost model used by a simulation."""

    software: SoftwarePathCosts = field(default_factory=SoftwarePathCosts)
    kernels: Dict[str, KernelCost] = field(
        default_factory=lambda: dict(DEFAULT_KERNEL_COSTS)
    )

    def kernel(self, name: str) -> KernelCost:
        """Look up a kernel cost record, raising KeyError if unknown."""
        return self.kernels[name]

    def with_kernel(self, kernel_cost: KernelCost) -> "CostModel":
        """A copy of this model with one kernel record replaced/added."""
        kernels = dict(self.kernels)
        kernels[kernel_cost.name] = kernel_cost
        return replace(self, kernels=kernels)

    def cpu_cycles(self, kernel_name: str, nbytes: int,
                   cpu_class: str) -> float:
        """Cycles to run ``kernel_name`` over ``nbytes`` on a CPU class.

        ``cpu_class`` is ``"host"`` or ``"dpu"``.
        """
        kernel_cost = self.kernel(kernel_name)
        if cpu_class == "host":
            per_byte = kernel_cost.host_cycles_per_byte
        elif cpu_class == "dpu":
            per_byte = kernel_cost.dpu_cycles_per_byte
        else:
            raise ValueError(f"unknown cpu class {cpu_class!r}")
        return kernel_cost.base_cycles + per_byte * nbytes


#: The library-wide default cost model instance.
DEFAULT_COSTS = CostModel()


def default_cost_model() -> CostModel:
    """Return the default calibrated cost model."""
    return DEFAULT_COSTS
