"""Network interface model.

A :class:`Nic` models the ConnectX-class interface on a DPU: a given
line rate, full-duplex, with per-direction serialization queues.  It
carries opaque frames; protocol behaviour (TCP windows, RDMA verbs)
lives in :mod:`repro.netstack` on top of a :class:`Wire` connecting two
NICs.

Match-action offload is modelled by :class:`FlowTable`: the SE traffic
director installs rules that steer incoming frames to the DPU or the
host without burning CPU cycles, mirroring OVS-style hardware steering.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Tuple

from ..sim import Environment, Resource, Store
from ..sim.stats import Counter

__all__ = ["Nic", "Wire", "FlowTable"]


class FlowRule:
    """One match-action entry: predicate, action, hit counter."""

    __slots__ = ("name", "predicate", "action", "hits")

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 action: str):
        self.name = name
        self.predicate = predicate
        self.action = action
        self.hits = 0

    def __repr__(self) -> str:
        return (f"FlowRule({self.name!r} -> {self.action}, "
                f"hits={self.hits})")


class FlowTable:
    """Hardware match-action table for ingress steering.

    Rules are evaluated in insertion order; the first match wins.
    ``default_action`` applies when no rule matches.  Per-rule hit
    counters make the steering auditable (the traffic director's Q2
    instrumentation).
    """

    def __init__(self, default_action: str = "host"):
        self.default_action = default_action
        self._rules: List[FlowRule] = []
        self.default_hits = 0

    def add_rule(self, predicate: Callable[[Any], bool],
                 action: str, name: str = "") -> FlowRule:
        """Install a steering rule; returns it for inspection."""
        rule = FlowRule(name or f"rule{len(self._rules)}",
                        predicate, action)
        self._rules.append(rule)
        return rule

    def remove_rule(self, name: str) -> bool:
        """Uninstall a rule by name; True if it existed."""
        for index, rule in enumerate(self._rules):
            if rule.name == name:
                del self._rules[index]
                return True
        return False

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()

    def classify(self, frame: Any) -> str:
        """Return the action tag for ``frame``."""
        for rule in self._rules:
            if rule.predicate(frame):
                rule.hits += 1
                return rule.action
        self.default_hits += 1
        return self.default_action

    @property
    def rules(self) -> List[FlowRule]:
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)


class Nic:
    """One network port with TX serialization and an RX dispatcher."""

    def __init__(self, env: Environment, bandwidth_bps: float,
                 port_latency_s: float = 1e-6, name: str = "nic"):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.bytes_per_s = bandwidth_bps / 8.0
        self.port_latency_s = port_latency_s
        self.name = name
        self._tx = Resource(env, capacity=1, name=f"{name}.tx")
        self.flow_table = FlowTable()
        #: per-destination ingress queues filled by the wire:
        #: "host" frames go to rx_host, "dpu" frames to rx_dpu.
        self.rx_host: Store = Store(env, name=f"{name}.rx_host")
        self.rx_dpu: Store = Store(env, name=f"{name}.rx_dpu")
        self.tx_bytes = Counter(f"{name}.tx_bytes")
        self.rx_bytes = Counter(f"{name}.rx_bytes")
        self.tx_frames = Counter(f"{name}.tx_frames")
        self.rx_frames = Counter(f"{name}.rx_frames")
        #: the Wire or Switch this port plugs into
        self.wire = None
        #: fabric address; assigned by Switch.attach (None on a Wire)
        self.address: Optional[str] = None

    def serialization_time(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire at line rate."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return nbytes / self.bytes_per_s

    def transmit(self, frame: Any, nbytes: int):
        """Send a frame onto the wire (generator).

        The TX queue is held only for serialization; port latency is
        pipelined (it delays this frame without blocking the next).

        Hot path: an uncontended TX serializer is held via
        :meth:`Resource.hold` — one scheduler entry acquires, clocks
        the frame out, and releases, instead of a request event plus
        a release on resume.
        """
        if self.wire is None:
            raise RuntimeError(f"{self.name} is not connected to a wire")
        serialization = self.serialization_time(nbytes)
        hold = self._tx.hold(serialization)
        if hold is not None:
            yield hold
        else:
            with self._tx.request() as req:
                yield req
                yield self.env.timeout(serialization)
        self.tx_bytes.value += nbytes
        self.tx_frames.value += 1
        carry_at = getattr(self.wire, "carry_at", None)
        if carry_at is not None:
            # Port latency folds into the flight delay: the frame
            # arrives at the same instant, without parking the sender
            # on an extra timer (it is pipelined regardless).
            carry_at(self, frame, nbytes, self.port_latency_s)
            return
        if self.port_latency_s:
            yield self.env.timeout(self.port_latency_s)
        self.wire.carry(self, frame, nbytes)

    def try_transmit(self, frame: Any, nbytes: int) -> bool:
        """Send a frame *now* without a process, if the TX port is free.

        Fire-and-forget fast path for senders with nothing to do after
        the send (ACKs, SYN-ACKs): the serializer is claimed with a
        self-releasing hold and delivery is scheduled at the same
        instant a blocking :meth:`transmit` would produce.  Returns
        False when the serializer is contended or the wire cannot
        schedule delivery — callers then queue the frame for a sender
        process.
        """
        if self.wire is None:
            raise RuntimeError(f"{self.name} is not connected to a wire")
        carry_at = getattr(self.wire, "carry_at", None)
        if carry_at is None:
            return False
        serialization = self.serialization_time(nbytes)
        if not self._tx.reserve(serialization):
            return False
        self.tx_bytes.value += nbytes
        self.tx_frames.value += 1
        carry_at(self, frame, nbytes, serialization + self.port_latency_s)
        return True

    def transmit_batch(self, frames: List[Tuple[Any, int]]):
        """Send several frames back-to-back (generator).

        The TX serializer is held once for the whole burst and each
        frame is delivered at its own serialization boundary — the
        wire sees frames at exactly the spacing a loop of
        :meth:`transmit` calls with no work in between would produce,
        but the sender pays one scheduler entry instead of three per
        frame.  Falls back to sequential transmits when the wire does
        not support scheduled delivery or the serializer is busy.
        """
        if len(frames) == 1:
            yield from self.transmit(*frames[0])
            return
        if self.wire is None:
            raise RuntimeError(f"{self.name} is not connected to a wire")
        carry_at = getattr(self.wire, "carry_at", None)
        total = 0.0
        for _frame, nbytes in frames:
            total += self.serialization_time(nbytes)
        hold = self._tx.hold(total) if carry_at is not None else None
        if hold is None:
            for frame, nbytes in frames:
                yield from self.transmit(frame, nbytes)
            return
        boundary = 0.0
        port = self.port_latency_s
        for frame, nbytes in frames:
            boundary += self.serialization_time(nbytes)
            self.tx_bytes.add(nbytes)
            self.tx_frames.add(1)
            carry_at(self, frame, nbytes, boundary + port)
        yield hold

    def transmit_batch_after(self, delay: float,
                             frames: List[Tuple[Any, int]]) -> Optional[float]:
        """Schedule a burst that starts serializing ``delay`` from now.

        Eventless companion to :meth:`transmit_batch` for senders that
        have a CPU charge (or similar pure delay) between *now* and
        the first byte on the wire: the whole burst is scheduled up
        front — every frame arrives at exactly the instant the
        charge-then-transmit sequence would deliver it — and the TX
        serializer is reserved without a scheduler entry.  Returns the
        total time until the last byte is clocked out (``delay`` +
        serialization), which the caller sleeps in a single timeout;
        ``None`` when the wire cannot schedule delivery or the
        serializer is contended (callers fall back to the evented
        path).  The reservation covers the serialization total
        starting now rather than after ``delay`` — the busy integral
        and pacing are identical, with the window shifted earlier by
        the (sub-microsecond) charge time.
        """
        if self.wire is None:
            raise RuntimeError(f"{self.name} is not connected to a wire")
        carry_at = getattr(self.wire, "carry_at", None)
        if carry_at is None:
            return None
        total = 0.0
        for _frame, nbytes in frames:
            total += self.serialization_time(nbytes)
        if not self._tx.reserve(total):
            return None
        boundary = 0.0
        port = self.port_latency_s
        for frame, nbytes in frames:
            boundary += self.serialization_time(nbytes)
            self.tx_bytes.add(nbytes)
            self.tx_frames.add(1)
            carry_at(self, frame, nbytes, delay + boundary + port)
        return delay + total

    def deliver(self, frame: Any, nbytes: int) -> None:
        """Called by the wire when a frame arrives at this NIC.

        The flow table classifies the frame and places it in the
        matching ingress queue — this steering costs no CPU.  A queue
        with a matching synchronous tap is fed directly, skipping the
        store's event machinery for the per-frame hot path.
        """
        self.rx_bytes.value += nbytes
        self.rx_frames.value += 1
        action = self.flow_table.classify(frame)
        store = self.rx_dpu if action == "dpu" else self.rx_host
        tap = store._tap
        if tap is not None and tap[0](frame):
            tap[1](frame)
            return
        store.put(frame)

    def tx_utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean busy fraction of the TX serializer."""
        return self._tx.utilization(elapsed)


class Wire:
    """A point-to-point full-duplex cable between two NICs.

    ``loss_rate`` injects deterministic (seeded) frame drops for
    exercising protocol recovery paths; production links default to
    lossless.
    """

    def __init__(self, env: Environment, nic_a: Nic, nic_b: Nic,
                 propagation_delay_s: float = 2e-6,
                 loss_rate: float = 0.0, loss_seed: int = 0):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate {loss_rate} out of [0, 1)")
        self.env = env
        self.propagation_delay_s = propagation_delay_s
        self.loss_rate = loss_rate
        # One RNG stream per direction: a direction's drop pattern then
        # depends only on its own frame order (which batched transmits
        # preserve), not on how the two directions happen to interleave
        # in real time.
        self._rng = {
            id(nic_a): random.Random(2 * loss_seed),
            id(nic_b): random.Random(2 * loss_seed + 1),
        }
        self.frames_dropped = Counter("wire.drops")
        #: optional FaultInjector; site "wire" (loss windows, link flaps)
        self.injector = None
        self._ends = {id(nic_a): nic_b, id(nic_b): nic_a}
        nic_a.wire = self
        nic_b.wire = self

    def carry(self, sender: Nic, frame: Any, nbytes: int) -> None:
        """Propagate a frame to the opposite end after the flight delay."""
        self.carry_at(sender, frame, nbytes, 0.0)

    def carry_at(self, sender: Nic, frame: Any, nbytes: int,
                 extra_delay: float) -> None:
        """Like :meth:`carry`, arriving ``extra_delay`` later.

        Batched transmits schedule every frame of a burst up front;
        the loss draw still happens now, in send order, so seeded
        loss sequences match the unbatched schedule.
        """
        receiver = self._ends.get(id(sender))
        if receiver is None:
            raise RuntimeError("sender is not attached to this wire")
        if self.loss_rate and \
                self._rng[id(sender)].random() < self.loss_rate:
            self.frames_dropped.add(1)
            return
        if self.injector is not None and self.injector.should_drop("wire"):
            self.frames_dropped.add(1)
            return

        def _arrive(_event):
            receiver.deliver(frame, nbytes)

        event = self.env.timeout(extra_delay + self.propagation_delay_s)
        event.callbacks.append(_arrive)
