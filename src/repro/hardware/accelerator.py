"""Hardware-accelerator (ASIC) models.

DPUs carry fixed-function ASICs — compression, encryption, regex,
deduplication — with vendor-specific characteristics the paper calls
out: *high throughput with high (setup) latency* and a small number of
concurrent job slots, with no virtualization support.

An :class:`Accelerator` therefore models:

* ``throughput_bps`` — streaming rate once a job is running,
* ``setup_latency_s`` — fixed per-job cost (descriptor DMA, engine
  wake-up), which makes small jobs comparatively expensive,
* ``channels`` — concurrent job slots (the "accelerator capacity"
  Section 5 says varies greatly across hardware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import FaultInjectedError
from ..sim import Environment, PriorityResource
from ..sim.stats import Counter, Tally

__all__ = ["AcceleratorSpec", "Accelerator"]

#: Accelerator kinds that appear across DPU SKUs.
KINDS = ("compression", "encryption", "regex", "dedup")


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one ASIC on a DPU SKU."""

    kind: str
    throughput_bytes_per_s: float
    setup_latency_s: float = 30e-6
    channels: int = 2

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown accelerator kind {self.kind!r}; known: {KINDS}"
            )
        if self.throughput_bytes_per_s <= 0:
            raise ValueError("throughput must be positive")
        if self.setup_latency_s < 0:
            raise ValueError("setup latency cannot be negative")
        if self.channels < 1:
            raise ValueError("need at least one channel")


class Accelerator:
    """A running instance of an ASIC inside a simulation."""

    def __init__(self, env: Environment, spec: AcceleratorSpec,
                 name: Optional[str] = None):
        self.env = env
        self.spec = spec
        self.kind = spec.kind
        self.name = name or f"asic.{spec.kind}"
        self._channels = PriorityResource(env, capacity=spec.channels,
                                          name=self.name)
        self.jobs = Counter(f"{self.name}.jobs")
        self.bytes_in = Counter(f"{self.name}.bytes")
        self.job_latency = Tally(f"{self.name}.latency")
        #: optional FaultInjector; site accel.<name>
        self.injector = None
        self.faults = Counter(f"{self.name}.faults")

    def service_time(self, nbytes: int) -> float:
        """Time one job of ``nbytes`` spends executing (no queueing)."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return self.spec.setup_latency_s + nbytes / self.spec.throughput_bytes_per_s

    def run_job(self, nbytes: int, priority: int = 0):
        """Execute one job (generator): queue for a channel, then run.

        ``priority`` orders the channel queue (lower = more urgent) —
        the co-scheduling hook Section 5 asks for ("How to schedule DP
        kernels on the same accelerator?").
        """
        if self.injector is not None:
            site = f"accel.{self.name}"
            if self.injector.is_down(site):
                self.faults.add(1)
                raise FaultInjectedError(
                    f"{site} offline at t={self.env.now:.6f}",
                    site=site, kind="down",
                )
        start = self.env.now
        with self._channels.request(priority=priority) as req:
            yield req
            yield self.env.timeout(self.service_time(nbytes))
        self.jobs.add(1)
        self.bytes_in.add(nbytes)
        self.job_latency.observe(self.env.now - start)

    @property
    def busy_channels(self) -> int:
        return self._channels.count

    @property
    def queue_length(self) -> int:
        return self._channels.queue_length

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Time-averaged busy channels / total channels."""
        return self._channels.utilization(elapsed) / self.spec.channels

    def __repr__(self) -> str:
        return (
            f"Accelerator({self.name}: {self.spec.throughput_bytes_per_s / 1e9:.2f} "
            f"GB/s x {self.spec.channels}ch)"
        )
