"""A top-of-rack switch connecting several servers.

The paper's experiments are single-link, but its motivating scenarios
(disaggregated data centers, shuffle, DFI flows) are multi-node.  A
:class:`Switch` implements the same ``carry`` interface as
:class:`~repro.hardware.nic.Wire`, so NICs plug into either: frames
carry a ``dst`` address, and each output port serializes deliveries at
the port rate (output-queued switch model).

Two-port back-compat: a frame without ``dst`` on a two-port switch is
delivered to the other port, so point-to-point code works unchanged.

Output queues honour a two-class QoS scheme: frames whose TCP port is
registered via :meth:`Switch.prioritize_port` are granted the output
serializer ahead of best-effort traffic (datacenter control-plane
DSCP marking, keyed on L4 port).  Without registered ports every frame
shares one class and the queues degrade to plain FIFO.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..errors import NetworkError
from ..sim import Environment
from ..sim.resources import PriorityResource
from ..sim.stats import Counter
from ..units import Gbps
from .nic import Nic

__all__ = ["Switch"]

#: QoS classes for the output-port serializer (lower = more urgent)
_CLASS_CONTROL = 0
_CLASS_BULK = 1


class Switch:
    """An output-queued switch with per-port serialization."""

    def __init__(self, env: Environment,
                 port_bandwidth_bps: float = 100 * Gbps,
                 forwarding_latency_s: float = 1e-6,
                 name: str = "switch"):
        if port_bandwidth_bps <= 0:
            raise ValueError("port bandwidth must be positive")
        self.env = env
        self.port_bytes_per_s = port_bandwidth_bps / 8.0
        self.forwarding_latency_s = forwarding_latency_s
        self.name = name
        self._ports: Dict[str, Nic] = {}
        self._output_queues: Dict[str, PriorityResource] = {}
        self._priority_ports: Set[int] = set()
        self.frames_forwarded = Counter(f"{name}.frames")
        self.frames_dropped = Counter(f"{name}.drops")
        self.priority_frames = Counter(f"{name}.priority_frames")

    def prioritize_port(self, port: int) -> None:
        """Serve frames for this TCP port ahead of best-effort traffic.

        A saturated output port queues migration round trips behind
        the very data backlog the migration is meant to relieve;
        marking the control-plane port keeps rebalancing responsive
        exactly when it matters.  Applies in both directions because
        every frame of a connection carries the service port.
        """
        self._priority_ports.add(port)

    def attach(self, nic: Nic, address: str) -> None:
        """Plug a NIC into the switch under ``address``."""
        if address in self._ports:
            raise NetworkError(f"address {address!r} already attached")
        self._ports[address] = nic
        self._output_queues[address] = PriorityResource(
            self.env, capacity=1, name=f"{self.name}.port.{address}"
        )
        nic.wire = self
        nic.address = address

    @property
    def addresses(self):
        return sorted(self._ports)

    def carry(self, sender: Nic, frame: Any, nbytes: int) -> None:
        """Route a frame to its destination port."""
        dst = frame.get("dst") if isinstance(frame, dict) else None
        if dst is None:
            dst = self._other_end(sender)
            if dst is None:
                self.frames_dropped.add(1)
                return
        receiver = self._ports.get(dst)
        if receiver is None:
            self.frames_dropped.add(1)
            return
        self.env.process(self._forward(dst, receiver, frame, nbytes),
                         name=f"{self.name}-fwd")

    def _other_end(self, sender: Nic) -> Optional[str]:
        """Two-port back-compat: the address that is not the sender's."""
        if len(self._ports) != 2:
            return None
        for address, nic in self._ports.items():
            if nic is not sender:
                return address
        return None

    def _forward(self, dst: str, receiver: Nic, frame: Any,
                 nbytes: int):
        qos = _CLASS_BULK
        if (self._priority_ports and isinstance(frame, dict)
                and frame.get("port") in self._priority_ports):
            qos = _CLASS_CONTROL
            self.priority_frames.add(1)
        with self._output_queues[dst].request(priority=qos) as request:
            yield request
            yield self.env.timeout(
                self.forwarding_latency_s
                + nbytes / self.port_bytes_per_s
            )
        self.frames_forwarded.add(1)
        receiver.deliver(frame, nbytes)
