"""A top-of-rack switch connecting several servers.

The paper's experiments are single-link, but its motivating scenarios
(disaggregated data centers, shuffle, DFI flows) are multi-node.  A
:class:`Switch` implements the same ``carry`` interface as
:class:`~repro.hardware.nic.Wire`, so NICs plug into either: frames
carry a ``dst`` address, and each output port serializes deliveries at
the port rate (output-queued switch model).

Two-port back-compat: a frame without ``dst`` on a two-port switch is
delivered to the other port, so point-to-point code works unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import NetworkError
from ..sim import Environment, Resource
from ..sim.stats import Counter
from ..units import Gbps
from .nic import Nic

__all__ = ["Switch"]


class Switch:
    """An output-queued switch with per-port serialization."""

    def __init__(self, env: Environment,
                 port_bandwidth_bps: float = 100 * Gbps,
                 forwarding_latency_s: float = 1e-6,
                 name: str = "switch"):
        if port_bandwidth_bps <= 0:
            raise ValueError("port bandwidth must be positive")
        self.env = env
        self.port_bytes_per_s = port_bandwidth_bps / 8.0
        self.forwarding_latency_s = forwarding_latency_s
        self.name = name
        self._ports: Dict[str, Nic] = {}
        self._output_queues: Dict[str, Resource] = {}
        self.frames_forwarded = Counter(f"{name}.frames")
        self.frames_dropped = Counter(f"{name}.drops")

    def attach(self, nic: Nic, address: str) -> None:
        """Plug a NIC into the switch under ``address``."""
        if address in self._ports:
            raise NetworkError(f"address {address!r} already attached")
        self._ports[address] = nic
        self._output_queues[address] = Resource(
            self.env, capacity=1, name=f"{self.name}.port.{address}"
        )
        nic.wire = self
        nic.address = address

    @property
    def addresses(self):
        return sorted(self._ports)

    def carry(self, sender: Nic, frame: Any, nbytes: int) -> None:
        """Route a frame to its destination port."""
        dst = frame.get("dst") if isinstance(frame, dict) else None
        if dst is None:
            dst = self._other_end(sender)
            if dst is None:
                self.frames_dropped.add(1)
                return
        receiver = self._ports.get(dst)
        if receiver is None:
            self.frames_dropped.add(1)
            return
        self.env.process(self._forward(dst, receiver, frame, nbytes),
                         name=f"{self.name}-fwd")

    def _other_end(self, sender: Nic) -> Optional[str]:
        """Two-port back-compat: the address that is not the sender's."""
        if len(self._ports) != 2:
            return None
        for address, nic in self._ports.items():
            if nic is not sender:
                return address
        return None

    def _forward(self, dst: str, receiver: Nic, frame: Any,
                 nbytes: int):
        with self._output_queues[dst].request() as request:
            yield request
            yield self.env.timeout(
                self.forwarding_latency_s
                + nbytes / self.port_bytes_per_s
            )
        self.frames_forwarded.add(1)
        receiver.deliver(frame, nbytes)
