"""CPU cluster model.

A :class:`CpuCluster` is a pool of identical cores (host EPYC cores or
DPU Arm cores).  Work is expressed in *cycles*; a core executes
``cycles / frequency_hz`` seconds of simulated time per unit of work.

Two usage patterns:

* **transient work** — ``yield from cluster.execute(cycles)`` acquires a
  core, burns the cycles, releases the core.  Used for per-request
  processing (TCP sends, sproc bodies).
* **dedicated cores** — a long-lived service acquires a core once with
  ``cluster.acquire_core()`` and then charges work onto it with
  ``yield from core.run(cycles)``.  Used for polling loops (SPDK-style
  reactors, the NE DMA poller).

Both are accounted in the cluster's busy-time integral, so
``cores_consumed()`` reports the paper's "CPU cores" metric: the
time-averaged number of busy cores.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FaultInjectedError
from ..sim import Environment, PriorityResource
from ..sim.stats import Counter

__all__ = ["CpuCluster", "DedicatedCore"]


class DedicatedCore:
    """A core held long-term by a service (e.g. a polling reactor)."""

    def __init__(self, cluster: "CpuCluster", request):
        self._cluster = cluster
        self._request = request
        self.released = False

    def run(self, cycles: float):
        """Burn ``cycles`` of work on this core (generator)."""
        if self.released:
            raise RuntimeError("core already released")
        yield from self._cluster._burn(cycles)

    def sleep(self, seconds: float):
        """Hold the core idle (busy-waiting poll loops still occupy it)."""
        if self.released:
            raise RuntimeError("core already released")
        yield self._cluster.env.timeout(seconds)

    def release(self) -> None:
        """Return the core to the cluster."""
        if not self.released:
            self._cluster._cores.release(self._request)
            self.released = True


class CpuCluster:
    """A pool of identical cores with utilization accounting."""

    def __init__(self, env: Environment, cores: int, frequency_hz: float,
                 name: str = "cpu", cpu_class: str = "host"):
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        if frequency_hz <= 0:
            raise ValueError(f"non-positive frequency {frequency_hz}")
        if cpu_class not in ("host", "dpu"):
            raise ValueError(f"unknown cpu class {cpu_class!r}")
        self.env = env
        self.cores = cores
        self.frequency_hz = float(frequency_hz)
        self.name = name
        self.cpu_class = cpu_class
        self._cores = PriorityResource(env, capacity=cores, name=name)
        self.cycles_charged = Counter(f"{name}.cycles")
        #: optional FaultInjector; site cpu.<name>.  Only the transient
        #: execute() path is hooked — dedicated cores (reactors, pollers)
        #: keep running so services survive a crash window and recover.
        self.injector = None
        self.faults = Counter(f"{name}.faults")

    # -- conversions ---------------------------------------------------------

    def seconds_for(self, cycles: float) -> float:
        """Wall time one core needs for ``cycles`` of work."""
        if cycles < 0:
            raise ValueError(f"negative cycles {cycles}")
        return cycles / self.frequency_hz

    # -- execution -----------------------------------------------------------

    def execute(self, cycles: float, priority: int = 0):
        """Acquire a core, burn ``cycles``, release (generator).

        Usage inside a process: ``yield from cluster.execute(c)``.

        Hot path: when a core is free and nobody queues, the acquire,
        the burn, and the release fuse into one scheduler entry via
        :meth:`Resource.hold` — the core is busy for the identical
        simulated interval, without a request event or a release
        round trip.
        """
        if self.injector is not None:
            site = f"cpu.{self.name}"
            if self.injector.is_down(site):
                self.faults.add(1)
                raise FaultInjectedError(
                    f"{site} crashed at t={self.env.now:.6f}",
                    site=site, kind="down",
                )
            cycles *= self.injector.slowdown(site)
        duration = self.seconds_for(cycles)
        hold = self._cores.hold(duration) if duration > 0 else None
        if hold is not None:
            self.cycles_charged.add(cycles)
            yield hold
            return
        with self._cores.request(priority=priority) as req:
            yield req
            yield from self._burn(cycles)

    def charge_async(self, cycles: float) -> bool:
        """Burn ``cycles`` fire-and-forget, if a core is free *now*.

        Eventless fast path for charges nothing waits on (softirq
        accounting, frontend bookkeeping): reserves a core for the
        burn interval — contending and accounted exactly like
        :meth:`execute` — without any scheduler entry.  Returns
        ``False`` when the cluster is contended or a fault injector
        is active; callers then fall back to a worker process so
        fault semantics hold.
        """
        if self.injector is not None:
            return False
        duration = cycles / self.frequency_hz
        if duration <= 0:
            return True
        if self._cores.reserve(duration):
            self.cycles_charged.value += cycles
            return True
        return False

    def acquire_core(self, priority: int = 0):
        """Acquire a core long-term (generator returning DedicatedCore).

        Usage: ``core = yield from cluster.acquire_core()``.
        """
        req = self._cores.request(priority=priority)
        yield req
        return DedicatedCore(self, req)

    def _burn(self, cycles: float):
        duration = self.seconds_for(cycles)
        self.cycles_charged.add(cycles)
        if duration > 0:
            yield self.env.timeout(duration)

    # -- accounting ----------------------------------------------------------

    @property
    def core_pool(self):
        """The underlying core :class:`~repro.sim.resources.Resource`.

        Public handle for flow-level integrations (the hybrid fluid
        mode registers it to credit analytically solved windows).
        """
        return self._cores

    @property
    def busy_cores(self) -> int:
        """Number of cores currently held."""
        return self._cores.count

    @property
    def queue_length(self) -> int:
        """Number of execution requests waiting for a core."""
        return self._cores.queue_length

    def cores_consumed(self, elapsed: Optional[float] = None) -> float:
        """Time-averaged number of busy cores (the paper's metric)."""
        return self._cores.utilization(elapsed)

    def busy_seconds(self) -> float:
        """Total core-seconds of occupancy so far."""
        return self._cores.busy_time()

    def __repr__(self) -> str:
        return (
            f"CpuCluster({self.name}: {self.cores} x "
            f"{self.frequency_hz / 1e9:.2f} GHz, busy={self.busy_cores})"
        )
