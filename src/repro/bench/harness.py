"""Benchmark harness utilities.

All benchmarks in this repository follow the same pattern: build a
fresh simulation, drive a workload, and read metrics out of the
hardware models.  The helpers here factor the repetitive parts —
fresh-environment construction, warmup trimming, and measuring "cores
consumed" over exactly the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..hardware.cpu import CpuCluster
from ..sim import Environment

__all__ = ["CoreMeter", "SweepRow", "Sweep", "drive_open_loop"]


class CoreMeter:
    """Measures cores consumed by a cluster over a window."""

    def __init__(self, cpu: CpuCluster):
        self.cpu = cpu
        self._start_busy = 0.0
        self._start_time = 0.0
        self._started = False

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has opened a measurement window."""
        return self._started

    def start(self) -> None:
        """Begin the measurement window at the current time."""
        self._start_busy = self.cpu.busy_seconds()
        self._start_time = self.cpu.env.now
        self._started = True

    def cores(self) -> float:
        """Average busy cores since :meth:`start` (0.0 if unstarted)."""
        if not self._started:
            return 0.0
        elapsed = self.cpu.env.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return (self.cpu.busy_seconds() - self._start_busy) / elapsed


@dataclass
class SweepRow:
    """One point of a parameter sweep."""

    x: float
    values: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]


class Sweep:
    """An ordered collection of sweep rows with shape assertions."""

    def __init__(self, x_label: str, rows: Optional[List[SweepRow]] = None):
        self.x_label = x_label
        self.rows: List[SweepRow] = rows or []

    def add(self, x: float, **values: float) -> None:
        """Append one sweep point."""
        self.rows.append(SweepRow(x, dict(values)))

    def series(self, key: str) -> List[float]:
        """All values of one named series, in sweep order."""
        return [row[key] for row in self.rows]

    def xs(self) -> List[float]:
        """The sweep's x values."""
        return [row.x for row in self.rows]

    def keys(self) -> List[str]:
        """The union of series names across all rows.

        First-appearance order: a series that only shows up in a
        later row (a ragged sweep) is still listed, after the ones
        the earlier rows introduced.
        """
        seen: List[str] = []
        for row in self.rows:
            for key in row.values:
                if key not in seen:
                    seen.append(key)
        return seen

    # -- serialization (the --json-out artifact format) ---------------------

    def to_dict(self) -> dict:
        """A JSON-safe encoding that :meth:`from_dict` round-trips."""
        return {
            "x_label": self.x_label,
            "rows": [{"x": row.x, "values": dict(row.values)}
                     for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Sweep":
        """Rebuild a :class:`Sweep` from :meth:`to_dict` output."""
        sweep = cls(data["x_label"])
        for row in data["rows"]:
            sweep.rows.append(SweepRow(row["x"], dict(row["values"])))
        return sweep

    # -- shape assertions used by the reproduction contract ----------------

    def assert_monotonic_increasing(self, key: str,
                                    tolerance: float = 0.02) -> None:
        """Series grows along the sweep (within noise tolerance)."""
        values = self.series(key)
        for a, b in zip(values, values[1:]):
            if b < a * (1 - tolerance) - 1e-12:
                raise AssertionError(
                    f"{key} not monotonic: {a} -> {b} "
                    f"(sweep {self.x_label}={self.xs()})"
                )

    def assert_dominates(self, winner: str, loser: str,
                         min_factor: float = 1.0) -> None:
        """``winner`` >= ``min_factor`` * ``loser`` at every point."""
        for row in self.rows:
            if row[winner] < min_factor * row[loser]:
                raise AssertionError(
                    f"at {self.x_label}={row.x}: {winner}={row[winner]} "
                    f"is not >= {min_factor} x {loser}={row[loser]}"
                )

    def assert_roughly_linear(self, key: str,
                              r2_floor: float = 0.95) -> None:
        """Least-squares fit of the series has R^2 above the floor."""
        xs = self.xs()
        ys = self.series(key)
        n = len(xs)
        if n < 3:
            raise AssertionError("need >= 3 points for linearity check")
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        if sxx == 0:
            raise AssertionError("degenerate sweep")
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        ss_res = sum((y - (slope * x + intercept)) ** 2
                     for x, y in zip(xs, ys))
        ss_tot = sum((y - mean_y) ** 2 for y in ys)
        r2 = 1 - ss_res / ss_tot if ss_tot else 1.0
        if r2 < r2_floor:
            raise AssertionError(
                f"{key} not linear: R^2={r2:.3f} < {r2_floor}"
            )


def drive_open_loop(env: Environment, rate_per_s: float,
                    handler: Callable[[int], object],
                    duration_s: float,
                    warmup_s: float = 0.0) -> None:
    """Run an open-loop load and advance the sim past the tail.

    Blocks (synchronously, in simulation terms) until ``duration_s``
    plus a drain margin has elapsed.
    """
    from ..workloads.arrivals import open_loop

    open_loop(env, rate_per_s, handler, duration_s)
    env.run(until=env.now + warmup_s + duration_s + 0.01)
