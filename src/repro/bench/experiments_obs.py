"""OB: the observability plane observed — tracing, telemetry, SLOs.

The experiment the cluster-wide observability layer exists for.  One
3-node cluster serves sharded reads/writes from stale-routed clients
while ``node1``'s DPU Arm cluster is crashed mid-run; a
:class:`~repro.cluster.Rebalancer` migrates its shards away.  A
:class:`~repro.obs.plane.ClusterTelemetry` plane scrapes every node,
an :class:`~repro.obs.plane.SloMonitor` watches a goodput floor and a
p99 ceiling, and a :class:`~repro.obs.plane.FlightRecorder` dumps
incident bundles on the fault and the breach.

Parts:

* ``trace`` — distributed-trace completeness over the merged
  cluster trace: forwarded (DPU-to-DPU) and failed-over (DPU→host)
  requests each yield a single connected node-tagged tree, migration
  pulls carry context, and no merged span dangles;
* ``plane`` — scrape/derived-series health: snapshot counts, shard
  heat, the node1 goodput collapse as the plane saw it, the breaker
  opening in the ``breaker_state`` series;
* ``slo`` — detection: violations fired, detection latency from
  fault onset to the first fired violation, incident bundles and
  their contents;
* ``control`` — the zero-perturbation twin: the identical scenario
  re-run with **no** telemetry at all must produce byte-identical
  client outcomes and cluster counters (``tracing_sim_identical``),
  and the traced run's span volume stays bounded per request.

Everything reported is simulated (sim-time or event counts), so the
``--jobs N`` byte-identity gate covers this experiment too.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cluster import Cluster, ClusterClient, Rebalancer
from ..faults import FaultInjector, FaultPlan
from ..obs import (ClusterTelemetry, FlightRecorder, SloMonitor,
                   SloSpec, merge_chrome_events)
from ..sim import Environment
from ..units import PAGE_SIZE
from ..workloads.arrivals import open_loop
from .experiments_scale import _stream

__all__ = ["obs_parts", "obs_scenario", "default_slos"]

SEED = 17
N_NODES = 3
RATE_PER_NODE = 80_000.0
DURATION_S = 12e-3
DRAIN_S = 4e-3
FAULT_START_S = 4e-3
STALE_FRACTION = 0.2
SCRAPE_INTERVAL_S = 5e-4
RETAIN_S = 2e-3

#: the objectives the monitor watches during the run
GOODPUT_FLOOR_OPS = 20_000.0
P99_CEILING_S = 2.0e-3


def default_slos() -> Tuple[SloSpec, ...]:
    """The experiment's SLO set (module-level so tests can reuse it)."""
    return (
        SloSpec("goodput_floor", metric="goodput_ops_per_s",
                bound=GOODPUT_FLOOR_OPS, kind="min", node="node1",
                min_windows=2),
        SloSpec("p99_ceiling", metric="p99_latency_s",
                bound=P99_CEILING_S, kind="max", min_windows=2),
    )


def obs_scenario(plane: Optional[ClusterTelemetry],
                 seed: int = SEED) -> Dict[str, object]:
    """One observed cluster run; ``plane=None`` is the control twin.

    The scenario is byte-for-byte the same simulation either way —
    the plane only reads — which is exactly what the ``control`` part
    asserts.
    """
    env = Environment()
    plan = FaultPlan(seed=seed).cpu_crash(
        FAULT_START_S, 10 * DURATION_S, site="cpu.node1.dpu.cpu")
    injector = FaultInjector(env, plan)
    cluster = Cluster(env, N_NODES, injector=injector,
                      telemetry=plane)
    rebalancer = Rebalancer(cluster)
    clients = [
        ClusterClient(cluster, f"client{i}", home=f"node{i}",
                      stale_fraction=STALE_FRACTION)
        for i in range(N_NODES)
    ]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    count = int(RATE_PER_NODE * DURATION_S)
    shard_pages = cluster.shard_bytes // PAGE_SIZE
    streams = [
        _stream(seed, i, count, cluster.shardmap.n_shards,
                shard_pages)
        for i in range(N_NODES)
    ]

    def handler_for(index):
        client, stream = clients[index], streams[index]

        def handler(k):
            message, shard = stream[k % len(stream)]
            client.submit(message, shard, tag=k)

        return handler

    start = env.now
    for i in range(N_NODES):
        open_loop(env, RATE_PER_NODE, handler_for(i), DURATION_S,
                  name=f"load{i}")
    env.run(until=start + DURATION_S + DRAIN_S)

    ok = errors = pending = 0
    for client in clients:
        outcome = client.outcomes()
        ok += outcome["ok"]
        errors += outcome["errors"]
        pending += outcome["pending"]
    return {
        "ok": ok,
        "errors": errors,
        "pending": pending,
        "counters": cluster.metrics_snapshot(),
        "cluster": cluster,
        "rebalancer": rebalancer,
    }


def _span_census(plane: ClusterTelemetry) -> Dict[str, float]:
    """Count the trace shapes the claims talk about, per span name."""
    total = open_spans = 0
    by_name: Dict[str, int] = {}
    adopted = adopted_with_id = 0
    for _name, tracer in plane.tracers():
        for span in tracer.all_spans():
            total += 1
            if span.end_s is None:
                open_spans += 1
            by_name[span.name] = by_name.get(span.name, 0) + 1
            if "remote_parent" in span.attrs:
                adopted += 1
                if isinstance(span.attrs.get("trace_id"), str):
                    adopted_with_id += 1
    return {
        "total": total,
        "open": open_spans,
        "by_name": by_name,
        "adopted": adopted,
        "adopted_with_id": adopted_with_id,
    }


def _merged_connectivity(plane: ClusterTelemetry) -> Dict[str, float]:
    """Parent-link integrity of the merged multi-node Chrome trace."""
    events = merge_chrome_events(plane.tracers())
    spans = [event for event in events if event.get("ph") == "X"]
    known = {event["args"]["span_id"] for event in spans}
    dangling = linked = adopted_linked = adopted_total = 0
    for event in spans:
        args = event["args"]
        parent = args.get("parent_id")
        if parent is not None:
            linked += 1
            if parent not in known:
                dangling += 1
        if "remote_parent" in args:
            adopted_total += 1
            if parent is not None and parent in known:
                adopted_linked += 1
    return {
        "events": float(len(events)),
        "spans": float(len(spans)),
        "linked": float(linked),
        "dangling": float(dangling),
        "adopted": float(adopted_total),
        "adopted_linked": float(adopted_linked),
    }


def obs_parts(telemetry: Optional[ClusterTelemetry] = None
              ) -> Dict[str, object]:
    """OB: the full observability experiment for the artifact.

    ``telemetry`` (from ``--trace-out``) supplies the plane so the CLI
    can export its merged trace; otherwise an identical private plane
    is built — the experiment always observes itself, and every
    reported value is simulated either way.
    """
    plane = (telemetry if telemetry is not None
             else ClusterTelemetry(tracing=True, name="obs"))
    plane.monitor = SloMonitor(default_slos())
    plane.recorder = FlightRecorder(retain_s=RETAIN_S)
    observed = obs_scenario(plane)
    control = obs_scenario(None)

    census = _span_census(plane)
    merged = _merged_connectivity(plane)
    by_name = census["by_name"]
    forwarded = by_name.get("cluster.route", 0)
    failovers = by_name.get("cluster.shard_host", 0)
    migrations = (by_name.get("mig.export", 0)
                  + by_name.get("rebalance.pull", 0))
    trace = {
        "spans_total": float(census["total"]),
        "spans_open": float(census["open"]),
        "forwarded_hops": float(forwarded),
        "failover_spans": float(failovers),
        "migration_spans": float(migrations),
        "adopted_requests": float(census["adopted"]),
        "adopted_with_trace_id": float(census["adopted_with_id"]),
        "merged_events": merged["events"],
        "merged_spans": merged["spans"],
        "dangling_parents": merged["dangling"],
        "adopted_connected_fraction": (
            merged["adopted_linked"] / merged["adopted"]
            if merged["adopted"] else 0.0),
    }

    # -- the plane's own view of the incident --------------------------------
    fault_scrapes = [snap for snap in plane.snapshots
                     if snap.t_s > FAULT_START_S]
    pre = [snap.derived["goodput_ops_per_s"].get("node1", 0.0)
           for snap in plane.snapshots
           if snap.t_s <= FAULT_START_S and snap.version > 1]
    post = [snap.derived["goodput_ops_per_s"].get("node1", 0.0)
            for snap in fault_scrapes
            if snap.t_s <= FAULT_START_S + 4 * SCRAPE_INTERVAL_S]
    breaker_series = [
        snap.derived["breaker_state"].get("node1", 0.0)
        for snap in plane.snapshots
    ]
    # hot_shards() reads the latest (drain) window, which is idle by
    # then — the part reports the peak per-window top-shard heat.
    peak_heat = max(
        (max(snap.derived["shard_heat"].values(), default=0.0)
         for snap in plane.snapshots), default=0.0)
    plane_part = {
        "snapshots": float(len(plane.snapshots)),
        "scrape_interval_s": SCRAPE_INTERVAL_S,
        "nodes": float(len(plane.nodes)),
        "derived_series": float(len(plane.latest().derived)
                                if plane.latest() else 0),
        "node1_goodput_pre_fault": (sum(pre) / len(pre)
                                    if pre else 0.0),
        "node1_goodput_post_fault": (sum(post) / len(post)
                                     if post else 0.0),
        "breaker_opened": float(max(breaker_series, default=0.0)
                                >= 1.0),
        "hot_shard_heat": peak_heat,
    }

    monitor, recorder = plane.monitor, plane.recorder
    first = monitor.first_violation()
    incident = recorder.incidents[0] if recorder.incidents else None
    slo_part = {
        "violations": float(len(monitor.violations)),
        "first_violation_t_s": first.t_s if first else 0.0,
        "detection_latency_s": ((first.t_s - FAULT_START_S)
                                if first else -1.0),
        "incidents": float(len(recorder.incidents)),
        "incident_snapshots": (float(len(incident["snapshots"]))
                               if incident else 0.0),
        "incident_span_nodes": (
            float(sum(1 for entry in incident["nodes"].values()
                      if entry["spans"]))
            if incident else 0.0),
        "slo_breach_recorded": float(any(
            bundle["reason"] == "slo_violation"
            for bundle in recorder.incidents)),
    }

    identical = (
        observed["ok"] == control["ok"]
        and observed["errors"] == control["errors"]
        and observed["pending"] == control["pending"]
        and observed["counters"] == control["counters"]
    )
    requests = max(observed["ok"] + observed["errors"], 1)
    control_part = {
        "observed_ok": float(observed["ok"]),
        "control_ok": float(control["ok"]),
        "observed_errors": float(observed["errors"]),
        "control_errors": float(control["errors"]),
        "observed_pending": float(observed["pending"]),
        "control_pending": float(control["pending"]),
        "tracing_sim_identical": float(identical),
        "spans_per_request": census["total"] / requests,
    }

    return {
        "trace": trace,
        "plane": plane_part,
        "slo": slo_part,
        "control": control_part,
    }
