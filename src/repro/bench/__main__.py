"""Command-line experiment runner: ``python -m repro.bench``.

Regenerates the paper's figures (and the ablations) without pytest::

    python -m repro.bench              # everything
    python -m repro.bench fig1 fig2    # a subset
    python -m repro.bench --list       # available experiments

The benchmark observatory rides on the same runner:

* ``--json-out BENCH_<runid>.json`` serializes every selected
  experiment's structured result into a schema-versioned artifact
  with provenance (git sha, python version, per-experiment wall
  clock, hardware profiles, workload seed);
* ``--check ARTIFACT.json`` evaluates the declarative paper-claims
  registry (F1–F3, F6–F8, S9 — see ``repro.obs.claims``) against an
  artifact and exits nonzero on any FAIL;
* ``--compare BASELINE.json [CANDIDATE.json]`` diffs two artifacts
  metric-by-metric within per-metric tolerance bands (one path: the
  selected experiments run and the fresh results are the candidate),
  exiting nonzero on regression;
* ``--profile`` attributes *real* (not simulated) time per experiment
  via cProfile, prints a top-N hotspot table, and persists the rows
  into the ``--json-out`` artifact (``experiments.<key>.profile``) so
  nightly retains them;
* ``--trace-out PATH`` runs the traceable experiments (fig6, fig8,
  scale, avail, obs, attr) with sim-time tracing on and exports
  Chrome ``trace_event`` JSON openable in Perfetto
  (https://ui.perfetto.dev), plus a flame summary per experiment.
  Cluster experiments trace through a ClusterTelemetry plane, so the
  merged file renders one Chrome process per node;
* ``--attr-out PATH`` does the same tracing run but exports
  per-experiment latency *attribution* reports — each DDS request's
  end-to-end latency decomposed into a conserved per-resource ledger
  (see ``repro.obs.attr``) — plus a top-bottleneck summary;
* ``--jobs N`` fans the selected experiments out over a process
  pool.  Experiments are independent simulations with fixed seeds,
  so the artifact is byte-identical to a sequential run outside
  wall-clock fields — which is exactly what
* ``--identity A.json B.json`` checks (canonical sorted JSON after
  stripping wall clocks, the recorded argv, and the real-time
  ``perf`` experiment), the CI gate for the parallel runner.

Exit codes: 0 success; 1 failed claim, regression, or identity
mismatch; 2 usage or artifact error; 3 ``--trace-out`` with no
traceable experiment selected.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import multiprocessing
import os
import pstats
import sys
import time

from . import (
    a1_parts,
    a2_parts,
    a3_parts,
    a4_parts,
    a5_parts,
    a6_parts,
    attr_parts,
    availability_parts,
    banner,
    fig1_parts,
    fig2_parts,
    fig3_parts,
    fig6_parts,
    fig7_parts,
    fig8_parts,
    format_sweep,
    format_table,
    obs_parts,
    perf_parts,
    query_parts,
    s9_parts,
    scale_parts,
    slo_parts,
)
from .harness import Sweep
from ..obs import ClusterTelemetry, Telemetry
from ..obs.artifact import (
    decode_part,
    encode_part,
    load_artifact,
    make_artifact,
    strip_volatile,
    write_artifact,
)
from ..obs.attr import build_report
from ..obs.claims import FAIL, evaluate_all, render_claim_report
from ..obs.regress import (
    compare,
    render_attribution_shifts,
    render_comparison,
)

#: experiments whose runner accepts a Telemetry (for --trace-out)
TRACEABLE = ("fig6", "fig8", "scale", "avail", "obs", "attr")

#: traceable experiments that run a Cluster and therefore take a
#: ClusterTelemetry plane (one Chrome process per node in the trace)
_CLUSTER_TRACED = ("scale", "obs", "attr")


def _make_telemetry(key: str):
    """The tracing bundle a traceable experiment's runner accepts."""
    if key in _CLUSTER_TRACED:
        return ClusterTelemetry(tracing=True, name=key)
    return Telemetry(tracing=True, name=key)

EXPERIMENTS = {
    "fig1": ("Figure 1: compression on different hardware",
             fig1_parts),
    "fig2": ("Figure 2: CPU consumption of storage access",
             fig2_parts),
    "fig3": ("Figure 3: CPU consumption of TCP", fig3_parts),
    "fig6": ("Figure 6: read-compress-send sproc", fig6_parts),
    "fig7": ("Figure 7: DPU-optimized RDMA", fig7_parts),
    "fig8": ("Figure 8: DDS remote-read latency", fig8_parts),
    "s9": ("Section 9: DDS cores saved", s9_parts),
    "a1": ("A1: sproc scheduling policies", a1_parts),
    "a2": ("A2: DPU portability", a2_parts),
    "a3": ("A3: cache placement", a3_parts),
    "a4": ("A4: fast persistence", a4_parts),
    "a5": ("A5: partial offloading", a5_parts),
    "a6": ("A6: kernel fusion on PCIe peers", a6_parts),
    "avail": ("Availability: goodput/p99 under faults, "
              "recovery on/off", availability_parts),
    "perf": ("Kernel microbenchmarks: event throughput, timeout "
             "churn, interrupt storms", perf_parts),
    "scale": ("SC: cluster goodput/host-cores/TCO vs node count, "
              "sharding, rebalance under DPU failure", scale_parts),
    "obs": ("OB: distributed tracing, telemetry plane, SLO flight "
            "recorder", obs_parts),
    "attr": ("AT: latency attribution, conservation invariant, "
             "offload advisor", attr_parts),
    "slo": ("SL: overload-safe self-healing — admission control, "
            "autoscale, hot-shard split vs the chaos matrix",
            slo_parts),
    "query": ("Q: distributed scans — pushdown vs pull, planner "
              "vs measured argmin, identity, stale routing",
              query_parts),
}


# -- parallel execution -----------------------------------------------------


def _run_job(key: str):
    """Run one experiment in a worker process.

    Returns everything the parent needs, in picklable form: the
    parts are pre-encoded to the JSON-safe artifact schema (a Sweep
    full of generator-bearing internals never crosses the process
    boundary) and the table text is rendered here so the parent only
    prints.  Each experiment builds its own Environment with its own
    fixed seeds, so process placement cannot perturb results — the
    byte-identity check (``--identity``) enforces exactly that.
    """
    title, fn = EXPERIMENTS[key]
    started = time.time()
    parts = fn()
    wall = time.time() - started
    rendered = _render_parts(parts)
    encoded = {name: encode_part(result)
               for name, result in parts.items()}
    return key, title, wall, rendered, encoded


def _run_parallel(selected, jobs: int) -> dict:
    """Fan experiments out over a process pool, stable order.

    ``imap`` preserves submission order, so output and artifact
    contents are ordered exactly like a sequential run regardless of
    which worker finishes first.
    """
    results = {}
    workers = min(jobs, len(selected))
    with multiprocessing.Pool(processes=workers) as pool:
        for key, title, wall, rendered, encoded in \
                pool.imap(_run_job, selected):
            print(banner(title))
            print(rendered)
            print(f"[{key} done in {wall:.1f}s]")
            results[key] = {
                "title": title,
                "wall_clock_s": wall,
                "parts": {name: decode_part(part)
                          for name, part in encoded.items()},
            }
    return results


# -- rendering --------------------------------------------------------------


def _dict_table(result: dict) -> str:
    if not result:
        return "(no results)"
    return format_table(["metric", "value"],
                        [[key, value] for key, value in result.items()])


def _nested_table(results: dict) -> str:
    """Config-per-row table over the union of metric keys.

    Handles an empty results dict and ragged configs (a metric some
    configs lack renders as NaN) instead of raising.
    """
    if not results:
        return "(no results)"
    keys: list = []
    for outcome in results.values():
        for key in outcome:
            if key not in keys:
                keys.append(key)
    rows = [[name] + [outcome.get(key, float("nan")) for key in keys]
            for name, outcome in results.items()]
    return format_table(["config"] + keys, rows)


def _render_parts(parts: dict) -> str:
    """Print-ready text for one experiment's structured result."""
    blocks = []
    for name, result in parts.items():
        if isinstance(result, Sweep):
            body = format_sweep(result)
        elif isinstance(result, dict) and result and \
                all(isinstance(value, dict)
                    for value in result.values()):
            body = _nested_table(result)
        else:
            body = _dict_table(result)
        blocks.append(f"{name}:\n{body}" if len(parts) > 1 else body)
    return "\n\n".join(blocks)


def _write_trace(path, traced):
    """Merge per-experiment traces into one Chrome trace JSON.

    Every telemetry bundle exports through the same protocol
    (``to_chrome_events``); a single-node experiment contributes one
    Chrome process, a cluster experiment one process per node (its
    ClusterTelemetry already merged the per-node tracers and resolved
    cross-node parent links).  Pids are offset per experiment and the
    ``process_name`` metadata is rewritten to
    ``<experiment>[/<node>]`` so Perfetto labels every track.
    """
    events = []
    pid_base = 0
    for key, telemetry in traced:
        width = 0
        for event in telemetry.to_chrome_events():
            event = dict(event)
            pid = event.get("pid", 1)
            width = max(width, pid)
            event["pid"] = pid_base + pid
            if event.get("ph") == "M" \
                    and event.get("name") == "process_name":
                sub = event.get("args", {}).get("name", "")
                label = key if sub in ("", key) else f"{key}/{sub}"
                event["args"] = {"name": label}
            events.append(event)
        pid_base += width
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated seconds",
                      "source": "python -m repro.bench"},
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, default=str)
    print(f"\n[trace: {len(events)} events -> {path}]")
    for key, telemetry in traced:
        print(f"\nflame summary ({key}):")
        print(telemetry.flame_summary())


def _hotspot_rows(profiler: cProfile.Profile,
                  top_n: int = 10) -> list:
    """Structured top-N real-time hotspots of one experiment.

    Plain JSON-able dicts, so the rows can ride into the run
    artifact (``results[key]["profile"]``) and survive into nightly
    uploads instead of evaporating on stdout.
    """
    stats = pstats.Stats(profiler)
    rows = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, funcname), \
            (ccalls, ncalls, tottime, cumtime, _callers) in entries:
        if filename.startswith("~"):
            where = funcname
        else:
            where = f"{os.path.basename(filename)}:{lineno}({funcname})"
        rows.append({"ncalls": ncalls, "tottime_s": round(tottime, 6),
                     "cumtime_s": round(cumtime, 6),
                     "function": where})
        if len(rows) >= top_n:
            break
    return rows


def _hotspot_table(rows: list) -> str:
    """The printed form of :func:`_hotspot_rows`."""
    if not rows:
        return "(no profile samples)"
    return format_table(
        ["ncalls", "tottime (s)", "cumtime (s)", "function"],
        [[row["ncalls"], f"{row['tottime_s']:.3f}",
          f"{row['cumtime_s']:.3f}", row["function"]]
         for row in rows])


def _tracer_pairs(key: str, telemetry):
    """(node, tracer) pairs from either telemetry flavor."""
    if hasattr(telemetry, "tracers"):     # ClusterTelemetry
        return telemetry.tracers()
    return [(key, telemetry.tracer)]


def _write_attr(path: str, traced) -> None:
    """Per-experiment attribution reports as one JSON document."""
    document = {
        "schema": "repro.obs/attr-report",
        "schema_version": 1,
        "experiments": {},
    }
    for key, telemetry in traced:
        report = build_report(_tracer_pairs(key, telemetry))
        document["experiments"][key] = report.to_dict()
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True,
                  default=str)
        handle.write("\n")
    print(f"\n[attribution: {len(document['experiments'])} "
          f"experiments -> {path}]")
    for key, entry in document["experiments"].items():
        top = entry["top_bottlenecks"][:3]
        ranked = ", ".join(
            f"{row['node']}/{row['category']}={row['seconds']:.3g}s"
            for row in top) or "none"
        print(f"  {key}: {entry['requests']} requests attributed, "
              f"top bottlenecks: {ranked}")


# -- observatory subcommands ------------------------------------------------


def _load_or_complain(path: str):
    try:
        return load_artifact(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load artifact {path!r}: {exc}",
              file=sys.stderr)
        return None


def _run_check(path: str) -> int:
    """--check: every paper claim against one artifact."""
    artifact = _load_or_complain(path)
    if artifact is None:
        return 2
    results = evaluate_all(artifact)
    print(banner(f"paper claims vs {path}"))
    print(render_claim_report(results))
    return 1 if any(r.status == FAIL for r in results) else 0


def _run_identity(path_a: str, path_b: str) -> int:
    """--identity: two artifacts must agree byte-for-byte.

    Wall-clock fields, the recorded command line, and the real-time
    ``perf`` experiment are stripped first (see
    :func:`repro.obs.artifact.strip_volatile`); everything that is
    *supposed* to be deterministic — every simulated metric — is then
    compared as canonical sorted JSON.  This is the gate that proves
    ``--jobs N`` cannot change a result.
    """
    documents = []
    for path in (path_a, path_b):
        document = _load_or_complain(path)
        if document is None:
            return 2
        documents.append(json.dumps(strip_volatile(document),
                                    indent=1, sort_keys=True))
    if documents[0] == documents[1]:
        print(f"identical: {path_a} == {path_b} "
              f"({len(documents[0])} canonical bytes, wall-clock "
              "fields excluded)")
        return 0
    lines_a = documents[0].splitlines()
    lines_b = documents[1].splitlines()
    print(f"artifacts differ: {path_a} vs {path_b}", file=sys.stderr)
    shown = 0
    for index, (line_a, line_b) in enumerate(zip(lines_a, lines_b)):
        if line_a != line_b:
            print(f"  line {index + 1}:\n  - {line_a.strip()}"
                  f"\n  + {line_b.strip()}", file=sys.stderr)
            shown += 1
            if shown >= 10:
                break
    if len(lines_a) != len(lines_b):
        print(f"  ({len(lines_a)} vs {len(lines_b)} canonical lines)",
              file=sys.stderr)
    return 1


def _run_compare(baseline_path: str, candidate) -> int:
    """--compare: baseline artifact vs candidate (doc or path)."""
    baseline = _load_or_complain(baseline_path)
    if baseline is None:
        return 2
    if isinstance(candidate, str):
        candidate_doc = _load_or_complain(candidate)
        if candidate_doc is None:
            return 2
        candidate_name = candidate
    else:
        candidate_doc = candidate
        candidate_name = "this run"
    report = compare(baseline, candidate_doc)
    print(banner(f"regression check: {baseline_path} "
                 f"vs {candidate_name}"))
    print(render_comparison(report))
    attributed = render_attribution_shifts(report, baseline,
                                           candidate_doc)
    if attributed:
        print()
        print(attributed)
    return 0 if report.ok else 1


# -- entry point ------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DPDPU paper's figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="trace the traceable experiments "
                             f"({', '.join(TRACEABLE)}) and write "
                             "Chrome trace JSON to PATH")
    parser.add_argument("--attr-out", metavar="PATH", default=None,
                        help="trace the traceable experiments and "
                             "write per-experiment latency "
                             "attribution reports (JSON) to PATH")
    parser.add_argument("--json-out", metavar="PATH", default=None,
                        help="serialize the run into a "
                             "schema-versioned artifact at PATH")
    parser.add_argument("--check", metavar="ARTIFACT", default=None,
                        help="evaluate the paper-claims registry "
                             "against ARTIFACT and exit (no "
                             "experiments run)")
    parser.add_argument("--compare", metavar="ARTIFACT", default=None,
                        nargs="+",
                        help="diff artifacts metric-by-metric: with "
                             "two paths compare them directly; with "
                             "one path run the selected experiments "
                             "and compare the fresh results against "
                             "it")
    parser.add_argument("--profile", action="store_true",
                        help="attribute real (wall-clock) time per "
                             "experiment via cProfile and print the "
                             "top hotspots")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="run experiments over a pool of N "
                             "worker processes; 0 autodetects the "
                             "machine's CPU count (results are "
                             "byte-identical to --jobs 1; see "
                             "--identity)")
    parser.add_argument("--identity", metavar="ARTIFACT", default=None,
                        nargs=2,
                        help="compare two artifacts byte-for-byte "
                             "outside wall-clock fields and exit "
                             "(no experiments run)")
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _fn) in EXPERIMENTS.items():
            traced = " [traceable]" if key in TRACEABLE else ""
            print(f"{key:6s} {title}{traced}")
        return 0

    if args.check:
        return _run_check(args.check)

    if args.identity:
        return _run_identity(args.identity[0], args.identity[1])

    if args.jobs == 0:
        # Autodetect: one worker per CPU.  Identity is guaranteed
        # regardless of N, so the only cost of over-provisioning is
        # idle workers on a short experiment list.
        args.jobs = os.cpu_count() or 1
    if args.jobs < 1:
        print(f"--jobs must be >= 1 (or 0 to autodetect), "
              f"got {args.jobs}", file=sys.stderr)
        return 2
    if args.jobs > 1 and (args.trace_out or args.attr_out
                          or args.profile):
        # Tracers and profilers live in the experiment's process;
        # their results cannot cross the pool boundary.
        print("--jobs > 1 is incompatible with "
              "--trace-out/--attr-out/--profile "
              "(run those sequentially)", file=sys.stderr)
        return 2

    if args.compare and len(args.compare) > 2:
        print("--compare takes one or two artifact paths",
              file=sys.stderr)
        return 2
    if args.compare and len(args.compare) == 2:
        return _run_compare(args.compare[0], args.compare[1])

    # Fail fast on unwritable output paths instead of crashing after
    # the (possibly long) benchmark run.  Append mode keeps any
    # existing file intact; a file we created gets cleaned up if no
    # output ends up written.
    probes = {}
    for path in (args.trace_out, args.attr_out):
        if not path:
            continue
        try:
            probes[path] = not os.path.exists(path)
            with open(path, "a"):
                pass
        except OSError as exc:
            print(f"cannot write to {path!r}: {exc}",
                  file=sys.stderr)
            return 2

    tracing_wanted = bool(args.trace_out or args.attr_out)
    if tracing_wanted and not args.experiments:
        selected = list(TRACEABLE)
    else:
        selected = args.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    traced = []
    suite_started = time.time()
    if args.jobs > 1:
        results = _run_parallel(selected, args.jobs)
    else:
        results = {}
        for key in selected:
            title, fn = EXPERIMENTS[key]
            print(banner(title))
            kwargs = {}
            telemetry = None
            if tracing_wanted and key in TRACEABLE:
                telemetry = _make_telemetry(key)
                kwargs["telemetry"] = telemetry
            profiler = cProfile.Profile() if args.profile else None
            started = time.time()
            if profiler:
                profiler.enable()
            parts = fn(**kwargs)
            if profiler:
                profiler.disable()
            wall = time.time() - started
            print(_render_parts(parts))
            if telemetry is not None:
                traced.append((key, telemetry))
            results[key] = {"title": title, "wall_clock_s": wall,
                            "parts": parts}
            print(f"[{key} done in {wall:.1f}s]")
            if profiler:
                hotspots = _hotspot_rows(profiler)
                results[key]["profile"] = hotspots
                print(f"\nhotspots ({key}, real time):")
                print(_hotspot_table(hotspots))
    suite_wall = time.time() - suite_started

    if tracing_wanted:
        if not traced:
            print("no traceable experiment selected "
                  f"(traceable: {', '.join(TRACEABLE)}); "
                  "no trace or attribution written", file=sys.stderr)
            for path, created in probes.items():
                if created:
                    os.remove(path)
            # Distinct exit code so CI catches a misconfigured
            # invocation instead of silently shipping no output.
            return 3
        if args.trace_out:
            _write_trace(args.trace_out, traced)
        if args.attr_out:
            _write_attr(args.attr_out, traced)

    exit_code = 0
    if args.json_out or args.compare:
        document = make_artifact(results, argv=argv,
                                 total_wall_clock_s=suite_wall)
        if args.json_out:
            write_artifact(args.json_out, document)
            metric_count = sum(len(entry["parts"])
                               for entry in document["experiments"]
                               .values())
            print(f"\n[artifact: {len(results)} experiments, "
                  f"{metric_count} parts in {suite_wall:.1f}s "
                  f"(jobs={args.jobs}) -> {args.json_out}]")
        if args.compare:
            exit_code = _run_compare(args.compare[0], document)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
