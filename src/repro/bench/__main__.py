"""Command-line experiment runner: ``python -m repro.bench``.

Regenerates the paper's figures (and the ablations) without pytest::

    python -m repro.bench              # everything
    python -m repro.bench fig1 fig2    # a subset
    python -m repro.bench --list       # available experiments
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    ablation_caching,
    ablation_fusion,
    ablation_partial_offload,
    ablation_persistence,
    ablation_portability,
    ablation_scheduling,
    banner,
    fig1_compression,
    fig1_real_bytes_checkpoint,
    fig2_storage_cpu,
    fig3_network_cpu,
    fig6_sproc,
    fig7_rdma,
    fig8_dds_latency,
    format_sweep,
    format_table,
    s9_dds_cores,
)
from ..hardware import BLUEFIELD2, GENERIC_DPU


def _dict_table(result: dict) -> str:
    return format_table(["metric", "value"],
                        [[key, value] for key, value in result.items()])


def _nested_table(results: dict) -> str:
    keys = list(next(iter(results.values())).keys())
    rows = [[name] + [outcome[key] for key in keys]
            for name, outcome in results.items()]
    return format_table(["config"] + keys, rows)


def run_fig1():
    print(format_sweep(fig1_compression()))
    print("\nreal-bytes checkpoint:",
          fig1_real_bytes_checkpoint())


def run_fig2():
    print(format_sweep(fig2_storage_cpu(duration_s=0.01)))


def run_fig3():
    print(format_sweep(fig3_network_cpu(duration_s=0.005)))


def run_fig6():
    results = {
        "bf2/specified": fig6_sproc(BLUEFIELD2, "specified"),
        "bf2/scheduled": fig6_sproc(BLUEFIELD2, "scheduled"),
        "generic/fallback": fig6_sproc(GENERIC_DPU, "specified"),
    }
    print(_nested_table(results))


def run_fig7():
    print(_dict_table(fig7_rdma()))


def run_fig8():
    print(_dict_table(fig8_dds_latency()))


def run_s9():
    print("page-server mix:")
    print(format_sweep(s9_dds_cores(duration_s=0.01)))
    print("\nKV (YCSB-B) mix:")
    print(format_sweep(s9_dds_cores(duration_s=0.01, workload="kv",
                                    read_fraction=0.95)))


def run_a1():
    print(_nested_table(ablation_scheduling()))


def run_a2():
    print(_nested_table(ablation_portability()))


def run_a3():
    print(format_sweep(ablation_caching()))


def run_a4():
    print(_dict_table(ablation_persistence()))


def run_a5():
    print(format_sweep(ablation_partial_offload(duration_s=0.008)))


def run_a6():
    print(format_sweep(ablation_fusion()))


EXPERIMENTS = {
    "fig1": ("Figure 1: compression on different hardware", run_fig1),
    "fig2": ("Figure 2: CPU consumption of storage access", run_fig2),
    "fig3": ("Figure 3: CPU consumption of TCP", run_fig3),
    "fig6": ("Figure 6: read-compress-send sproc", run_fig6),
    "fig7": ("Figure 7: DPU-optimized RDMA", run_fig7),
    "fig8": ("Figure 8: DDS remote-read latency", run_fig8),
    "s9": ("Section 9: DDS cores saved", run_s9),
    "a1": ("A1: sproc scheduling policies", run_a1),
    "a2": ("A2: DPU portability", run_a2),
    "a3": ("A3: cache placement", run_a3),
    "a4": ("A4: fast persistence", run_a4),
    "a5": ("A5: partial offloading", run_a5),
    "a6": ("A6: kernel fusion on PCIe peers", run_a6),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DPDPU paper's figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _fn) in EXPERIMENTS.items():
            print(f"{key:6s} {title}")
        return 0

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for key in selected:
        title, fn = EXPERIMENTS[key]
        print(banner(title))
        started = time.time()
        fn()
        print(f"[{key} done in {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
