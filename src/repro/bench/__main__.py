"""Command-line experiment runner: ``python -m repro.bench``.

Regenerates the paper's figures (and the ablations) without pytest::

    python -m repro.bench              # everything
    python -m repro.bench fig1 fig2    # a subset
    python -m repro.bench --list       # available experiments

With ``--trace-out PATH`` the traceable experiments (fig6, fig8) run
with sim-time tracing on and export a Chrome ``trace_event`` JSON
openable in Perfetto (https://ui.perfetto.dev), plus a plain-text
flame summary per experiment.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from . import (
    ablation_caching,
    ablation_fusion,
    ablation_partial_offload,
    ablation_persistence,
    ablation_portability,
    ablation_scheduling,
    banner,
    fig1_compression,
    fig1_real_bytes_checkpoint,
    fig2_storage_cpu,
    fig3_network_cpu,
    fig6_sproc,
    fig7_rdma,
    fig8_dds_latency,
    format_sweep,
    format_table,
    s9_dds_cores,
)
from ..hardware import BLUEFIELD2, GENERIC_DPU
from ..obs import Telemetry


def _dict_table(result: dict) -> str:
    return format_table(["metric", "value"],
                        [[key, value] for key, value in result.items()])


def _nested_table(results: dict) -> str:
    keys = list(next(iter(results.values())).keys())
    rows = [[name] + [outcome[key] for key in keys]
            for name, outcome in results.items()]
    return format_table(["config"] + keys, rows)


def run_fig1():
    print(format_sweep(fig1_compression()))
    print("\nreal-bytes checkpoint:",
          fig1_real_bytes_checkpoint())


def run_fig2():
    print(format_sweep(fig2_storage_cpu(duration_s=0.01)))


def run_fig3():
    print(format_sweep(fig3_network_cpu(duration_s=0.005)))


def run_fig6(telemetry=None):
    # Tracing covers the first configuration only: one Telemetry
    # adopts one runtime's instruments (duplicate-name protection).
    results = {
        "bf2/specified": fig6_sproc(BLUEFIELD2, "specified",
                                    telemetry=telemetry),
        "bf2/scheduled": fig6_sproc(BLUEFIELD2, "scheduled"),
        "generic/fallback": fig6_sproc(GENERIC_DPU, "specified"),
    }
    print(_nested_table(results))


def run_fig7():
    print(_dict_table(fig7_rdma()))


def run_fig8(telemetry=None):
    print(_dict_table(fig8_dds_latency(telemetry=telemetry)))


def run_s9():
    print("page-server mix:")
    print(format_sweep(s9_dds_cores(duration_s=0.01)))
    print("\nKV (YCSB-B) mix:")
    print(format_sweep(s9_dds_cores(duration_s=0.01, workload="kv",
                                    read_fraction=0.95)))


def run_a1():
    print(_nested_table(ablation_scheduling()))


def run_a2():
    print(_nested_table(ablation_portability()))


def run_a3():
    print(format_sweep(ablation_caching()))


def run_a4():
    print(_dict_table(ablation_persistence()))


def run_a5():
    print(format_sweep(ablation_partial_offload(duration_s=0.008)))


def run_a6():
    print(format_sweep(ablation_fusion()))


#: experiments whose runner accepts a Telemetry (for --trace-out)
TRACEABLE = ("fig6", "fig8")

EXPERIMENTS = {
    "fig1": ("Figure 1: compression on different hardware", run_fig1),
    "fig2": ("Figure 2: CPU consumption of storage access", run_fig2),
    "fig3": ("Figure 3: CPU consumption of TCP", run_fig3),
    "fig6": ("Figure 6: read-compress-send sproc", run_fig6),
    "fig7": ("Figure 7: DPU-optimized RDMA", run_fig7),
    "fig8": ("Figure 8: DDS remote-read latency", run_fig8),
    "s9": ("Section 9: DDS cores saved", run_s9),
    "a1": ("A1: sproc scheduling policies", run_a1),
    "a2": ("A2: DPU portability", run_a2),
    "a3": ("A3: cache placement", run_a3),
    "a4": ("A4: fast persistence", run_a4),
    "a5": ("A5: partial offloading", run_a5),
    "a6": ("A6: kernel fusion on PCIe peers", run_a6),
}


def _write_trace(path, traced):
    """Merge per-experiment tracers into one Chrome trace JSON."""
    events = []
    for pid, (key, telemetry) in enumerate(traced, start=1):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": key}})
        for event in telemetry.tracer.to_chrome_events():
            event["pid"] = pid
            events.append(event)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated seconds",
                      "source": "python -m repro.bench"},
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, default=str)
    print(f"\n[trace: {len(events)} events -> {path}]")
    for key, telemetry in traced:
        print(f"\nflame summary ({key}):")
        print(telemetry.tracer.flame_summary())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DPDPU paper's figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="trace the traceable experiments "
                             f"({', '.join(TRACEABLE)}) and write "
                             "Chrome trace JSON to PATH")
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _fn) in EXPERIMENTS.items():
            traced = " [traceable]" if key in TRACEABLE else ""
            print(f"{key:6s} {title}{traced}")
        return 0

    probe_created = False
    if args.trace_out:
        # Fail fast on an unwritable path instead of crashing after
        # the (possibly long) benchmark run.  Append mode keeps any
        # existing file intact; a file we created gets cleaned up if
        # no trace ends up written.
        try:
            probe_created = not os.path.exists(args.trace_out)
            with open(args.trace_out, "a"):
                pass
        except OSError as exc:
            print(f"cannot write trace to {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.trace_out and not args.experiments:
        selected = list(TRACEABLE)
    else:
        selected = args.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    traced = []
    for key in selected:
        title, fn = EXPERIMENTS[key]
        print(banner(title))
        started = time.time()
        if args.trace_out and key in TRACEABLE:
            telemetry = Telemetry(tracing=True, name=key)
            fn(telemetry)
            traced.append((key, telemetry))
        else:
            fn()
        print(f"[{key} done in {time.time() - started:.1f}s]")

    if args.trace_out:
        if not traced:
            print("no traceable experiment selected "
                  f"(traceable: {', '.join(TRACEABLE)}); "
                  "no trace written", file=sys.stderr)
            if probe_created:
                os.remove(args.trace_out)
        else:
            _write_trace(args.trace_out, traced)
    return 0


if __name__ == "__main__":
    sys.exit(main())
