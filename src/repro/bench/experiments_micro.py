"""Experiments F1–F3: the paper's Section 2 micro-benchmarks.

Each function builds a fresh simulation, drives the workload the
figure describes, and returns a :class:`~repro.bench.harness.Sweep`
whose series correspond to the figure's lines.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import HostComputeBaseline, HostStoragePath
from ..baselines.host_tcp import make_kernel_tcp
from ..buffers import SynthBuffer
from ..core import DpdpuRuntime
from ..hardware import (
    ARM_HOST,
    BLUEFIELD2,
    EPYC_HOST,
    connect,
    make_server,
)
from ..sim import Environment
from ..units import Gbps, MB, MiB, PAGE_SIZE
from ..workloads import make_text, open_loop
from .harness import CoreMeter, Sweep

__all__ = [
    "fig1_compression",
    "fig1_real_bytes_checkpoint",
    "fig2_storage_cpu",
    "fig3_network_cpu",
    "fig1_parts",
    "fig2_parts",
    "fig3_parts",
]

#: 8 KiB payload + headers on the wire, used to convert Gbps <-> msgs/s.
_WIRE_MSG_BITS = (PAGE_SIZE + 66) * 8


def fig1_compression(
    sizes_mb: Sequence[int] = (1, 4, 16, 64, 256),
) -> Sweep:
    """Figure 1: DEFLATE latency vs data size on three devices.

    Series: ``epyc_s`` (EPYC core), ``arm_s`` (Arm A72 core),
    ``bf2_asic_s`` (BlueField-2 compression accelerator).
    """
    sweep = Sweep("size_mb")
    for size_mb in sizes_mb:
        nbytes = size_mb * MB
        env = Environment()
        epyc = make_server(env, name="epyc", host_profile=EPYC_HOST)
        arm = make_server(env, name="arm", host_profile=ARM_HOST)
        # The Arm baseline charges DPU-class cycles/byte (A72 cores).
        arm.host_cpu.cpu_class = "dpu"
        dpu_server = make_server(env, name="bf2",
                                 dpu_profile=BLUEFIELD2)

        epyc_path = HostComputeBaseline(epyc.host_cpu)
        arm_path = HostComputeBaseline(arm.host_cpu)
        asic = dpu_server.dpu.accelerator("compression")

        timings = {}

        def job(path, tag):
            started = env.now
            yield from path.run_kernel("compress", SynthBuffer(nbytes))
            timings[tag] = env.now - started

        def asic_job():
            started = env.now
            yield from asic.run_job(nbytes)
            timings["bf2_asic_s"] = env.now - started

        env.process(job(epyc_path, "epyc_s"))
        env.process(job(arm_path, "arm_s"))
        env.process(asic_job())
        env.run()
        sweep.add(size_mb, **timings)
    return sweep


def fig1_real_bytes_checkpoint(nbytes: int = 256 * 1024) -> dict:
    """Figure 1 companion: run *real* DEFLATE on synthetic text.

    Validates that the functional path really compresses natural-text
    data at natural-text ratios (the simulated latencies above assume
    streaming compression regardless of content).
    """
    text = make_text(nbytes)
    env = Environment()
    epyc = make_server(env, name="epyc")
    baseline = HostComputeBaseline(epyc.host_cpu)
    outcome = {}

    def job():
        from ..buffers import RealBuffer
        result = yield from baseline.run_kernel(
            "compress", RealBuffer(text)
        )
        outcome["ratio"] = nbytes / result.buffer.size
        outcome["compressed_bytes"] = result.buffer.size

    env.process(job())
    env.run()
    return outcome


def fig2_storage_cpu(
    rates_kpages: Sequence[int] = (50, 150, 250, 350, 450),
    duration_s: float = 0.02,
) -> Sweep:
    """Figure 2: CPU consumption of storage access vs throughput.

    Series: ``kernel_cores`` and ``io_uring_cores`` (the paper's two
    lines — host cores), plus the DPDPU extension the paper motivates:
    ``dpdpu_host_cores`` / ``dpdpu_dpu_cores`` for the SE offloaded
    file path.
    """
    sweep = Sweep("kpages_per_s")
    for rate_kpages in rates_kpages:
        rate = rate_kpages * 1000.0
        values = {}

        # -- host software paths ------------------------------------
        for path_name, key in (("kernel", "kernel_cores"),
                               ("io_uring", "io_uring_cores"),
                               ("spdk_host", "spdk_host_cores")):
            env = Environment()
            server = make_server(env, name="host")
            path = HostStoragePath(server.host_cpu, server.ssd(0),
                                   server.costs.software, path_name)
            meter = CoreMeter(server.host_cpu)
            meter.start()

            def handler(i, path=path):
                yield from path.read_page(PAGE_SIZE)

            open_loop(env, rate, handler, duration_s)
            env.run(until=duration_s)
            values[key] = meter.cores()

        # -- the SE offloaded path ------------------------------------
        env = Environment()
        server = make_server(env, name="dpu", dpu_profile=BLUEFIELD2)
        runtime = DpdpuRuntime(server, se_ring_capacity=1 << 16)
        file_id = runtime.storage.create("sweep", size=512 * MiB)
        host_meter = CoreMeter(server.host_cpu)
        dpu_meter = CoreMeter(server.dpu.cpu)
        host_meter.start()
        dpu_meter.start()
        pages_in_file = (512 * MiB) // PAGE_SIZE

        def se_handler(i):
            offset = (i % pages_in_file) * PAGE_SIZE
            request = runtime.storage.read(file_id, offset, PAGE_SIZE)
            yield request.done

        open_loop(env, rate, se_handler, duration_s)
        env.run(until=duration_s)
        values["dpdpu_host_cores"] = host_meter.cores()
        values["dpdpu_dpu_cores"] = dpu_meter.cores()

        sweep.add(rate_kpages, **values)
    return sweep


def fig3_network_cpu(
    gbps_points: Sequence[int] = (10, 30, 50, 70, 90),
    duration_s: float = 0.01,
    n_connections: int = 16,
) -> Sweep:
    """Figure 3: CPU consumption of TCP at increasing bandwidth.

    Series: ``kernel_tx_cores`` / ``kernel_rx_cores`` (the paper's
    measurement: host cores running kernel TCP), plus the NE
    comparison: ``ne_host_cores`` (host side of the offloaded stack)
    and ``ne_dpu_cores`` (Arm cores running the protocol).
    """
    sweep = Sweep("gbps")
    for gbps in gbps_points:
        rate = gbps * Gbps / _WIRE_MSG_BITS
        values = {}

        values.update(_kernel_tcp_point(rate, duration_s,
                                        n_connections))
        values.update(_ne_tcp_point(rate, duration_s, n_connections))
        sweep.add(gbps, **values)
    return sweep


def _kernel_tcp_point(rate: float, duration_s: float,
                      n_connections: int) -> dict:
    env = Environment()
    sender = make_server(env, name="snd", dpu_profile=None)
    receiver = make_server(env, name="rcv", dpu_profile=None)
    connect(sender, receiver)
    tx_stack = make_kernel_tcp(sender, "tx")
    rx_stack = make_kernel_tcp(receiver, "rx")
    listener = rx_stack.listen(4000)
    connections = []

    def setup():
        for _ in range(n_connections):
            connection = yield from tx_stack.connect(4000)
            connections.append(connection)

    def drain():
        while True:
            server_conn = yield listener.accept()
            env.process(_sink(server_conn))

    def _sink(connection):
        while True:
            yield connection.recv_message()

    env.process(drain())
    env.run(until=env.process(setup()))

    tx_meter = CoreMeter(sender.host_cpu)
    rx_meter = CoreMeter(receiver.host_cpu)
    tx_meter.start()
    rx_meter.start()

    def handler(i):
        connection = connections[i % n_connections]
        yield from connection.send_message(SynthBuffer(PAGE_SIZE))

    start = env.now
    open_loop(env, rate, handler, duration_s)
    env.run(until=start + duration_s)
    return {
        "kernel_tx_cores": tx_meter.cores(),
        "kernel_rx_cores": rx_meter.cores(),
    }


def _ne_tcp_point(rate: float, duration_s: float,
                  n_connections: int) -> dict:
    env = Environment()
    sender = make_server(env, name="snd", dpu_profile=BLUEFIELD2)
    receiver = make_server(env, name="rcv", dpu_profile=BLUEFIELD2)
    connect(sender, receiver)
    tx_runtime = DpdpuRuntime(sender)
    rx_runtime = DpdpuRuntime(receiver)
    listener = rx_runtime.network.listen(4000)
    sockets = []

    def setup():
        for _ in range(n_connections):
            socket = yield tx_runtime.network.connect(4000).done
            sockets.append(socket)

    def drain():
        while True:
            socket = yield listener.accept().done
            env.process(_sink(socket))

    def _sink(socket):
        while True:
            yield socket.recv().done

    env.process(drain())
    env.run(until=env.process(setup()))

    host_meter = CoreMeter(sender.host_cpu)
    dpu_meter = CoreMeter(sender.dpu.cpu)
    host_meter.start()
    dpu_meter.start()

    def handler(i):
        socket = sockets[i % n_connections]
        yield socket.send(SynthBuffer(PAGE_SIZE)).done

    start = env.now
    open_loop(env, rate, handler, duration_s)
    env.run(until=start + duration_s)
    return {
        "ne_host_cores": host_meter.cores(),
        "ne_dpu_cores": dpu_meter.cores(),
    }


# -- structured runners for the CLI / artifact ------------------------------
#
# One function per experiment id, returning every part (Sweep or
# dict) the experiment produces, under stable part names.  The CLI
# renders these generically and ``--json-out`` serializes them into
# the schema-versioned run artifact (see ``repro.obs.artifact``);
# durations are the CLI's quick-run defaults.


def fig1_parts() -> dict:
    """F1: the compression sweep plus the real-bytes checkpoint."""
    return {
        "compression": fig1_compression(),
        "real_bytes_checkpoint": fig1_real_bytes_checkpoint(),
    }


def fig2_parts() -> dict:
    """F2: CPU consumption of storage access."""
    return {"storage_cpu": fig2_storage_cpu(duration_s=0.01)}


def fig3_parts() -> dict:
    """F3: CPU consumption of TCP."""
    return {"network_cpu": fig3_network_cpu(duration_s=0.005)}
