"""Q: distributed scan queries — pushdown vs pull across the cluster.

The paper's end-to-end payoff: a ``ScanQuery`` over a sharded table,
scattered through the shard map, with predicate/projection/partial
aggregation compiled into DDS UDFs that run on the owning node's Arm
cores next to the shard file.  Only selected bytes cross the wire and
the coordinator's host cores barely work — at the price of slower
per-byte compute on the A72s.

Parts:

* ``scatter`` — strong-scaling sweep over node count (1/2/4/8) at a
  fixed table size, running the same aggregate query both ways on
  every cluster.  Reports end-to-end latency, coordinator+host busy
  time, coordinator wire bytes, and the pull/pushdown ratios.  The
  honest regime is preserved: at 100 Gbps pull *wins latency* (EPYC
  cores out-churn the A72s and the wire is not the bottleneck); what
  pushdown buys is an order of magnitude in host cycles and wire
  bytes.
* ``planner`` — the cluster-aware cost model against the measured
  argmin on three far-from-crossover regimes: a non-selective full
  scan on fast and slow fabric (pull wins both — pushdown cannot
  shrink what it ships) and a selective aggregate on a 2 Gbps fabric
  (pushdown wins outright — the wire is the bottleneck and pushdown
  starves it).
* ``identity`` — the hard identity contract: for every query shape
  (projection, aggregate, full scan) the pushdown plan, the pull
  plan, and the auto plan return byte-identical answers.
* ``routing`` — a coordinator with a deliberately stale shard map:
  every misdirected sub-query rides the existing DPU-side forwarding
  path and the answer still matches a fresh coordinator's truth.

Everything is seeded; repeated runs and ``--jobs N`` runs stay
byte-identical.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..algos import crc32
from ..query import (DistributedScanDeployment, QueryResult, ScanQuery,
                     run_distributed_scan)
from ..units import Gbps
from .harness import Sweep

__all__ = ["query_parts", "scatter_scaling", "planner_regimes",
           "identity_matrix", "stale_routing"]

#: scatter sweep: table and fabric held fixed while nodes vary
SCATTER_NODES: Tuple[int, ...] = (1, 2, 4, 8)
SCATTER_ROWS = 48_000
SCATTER_SHARDS = 32
FAST_BPS = 100 * Gbps
SLOW_BPS = 2 * Gbps


def _aggregate_query() -> ScanQuery:
    """SUM/MIN/MAX/COUNT of extendedprice over A-flagged rows."""
    return ScanQuery(predicate_column="returnflag",
                     predicate=lambda v: v == b"A",
                     aggregate_column="extendedprice",
                     estimated_selectivity=0.33)


def _projection_query() -> ScanQuery:
    """Two narrow columns of the rare high-quantity rows."""
    return ScanQuery(predicate_column="quantity",
                     predicate=lambda v: int(v) >= 45,
                     projection=("orderkey", "extendedprice"),
                     estimated_selectivity=0.12)


def _wide_query() -> ScanQuery:
    """Every column of every row — pushdown cannot shrink this."""
    return ScanQuery(predicate_column="quantity",
                     predicate=lambda v: int(v) >= 1,
                     estimated_selectivity=1.0)


def _exact(a: QueryResult, b: QueryResult) -> bool:
    """Bitwise result identity (stricter than semantic ``matches``)."""
    return (a.count == b.count and a.rows == b.rows
            and a.total == b.total and a.minimum == b.minimum
            and a.maximum == b.maximum)


def _result_crc(result: QueryResult) -> int:
    payload = repr((result.count, result.total, result.minimum,
                    result.maximum)).encode()
    if result.rows is not None:
        payload += b"|" + b"|".join(result.rows)
    return crc32(payload)


# -- scatter ----------------------------------------------------------------


def scatter_scaling() -> Sweep:
    """The same aggregate both ways on 1/2/4/8-node clusters."""
    sweep = Sweep("nodes")
    base_elapsed = None
    for i, n_nodes in enumerate(SCATTER_NODES):
        deployment = DistributedScanDeployment(
            n_nodes=n_nodes, n_rows=SCATTER_ROWS,
            n_shards=SCATTER_SHARDS, port=9400 + i,
            network_bps=FAST_BPS)
        query = _aggregate_query()
        push = run_distributed_scan(deployment, query, plan="pushdown")
        pull = run_distributed_scan(deployment, query, plan="pull")
        if base_elapsed is None:
            base_elapsed = push["elapsed_s"]
        host_ratio = (pull["host_busy_s"] / push["host_busy_s"]
                      if push["host_busy_s"] else float("inf"))
        wire_ratio = (pull["bytes_received"] / push["bytes_received"]
                      if push["bytes_received"] else float("inf"))
        sweep.add(
            n_nodes,
            pushdown_ms=push["elapsed_s"] * 1e3,
            pull_ms=pull["elapsed_s"] * 1e3,
            pushdown_host_busy_ms=push["host_busy_s"] * 1e3,
            pull_host_busy_ms=pull["host_busy_s"] * 1e3,
            pushdown_wire_bytes=float(push["bytes_received"]),
            pull_wire_bytes=float(pull["bytes_received"]),
            host_ratio=host_ratio,
            wire_ratio=wire_ratio,
            pushdown_speedup=base_elapsed / push["elapsed_s"],
            identical=1.0 if _exact(push["result"],
                                    pull["result"]) else 0.0,
        )
    return sweep


# -- planner ----------------------------------------------------------------

#: (config, query factory, nodes, rows, shards, fabric bps)
_REGIMES = (
    ("wide_fast", _wide_query, 8, 8_000, 16, FAST_BPS),
    ("wide_slow", _wide_query, 4, 4_000, 8, SLOW_BPS),
    ("agg_slow", _aggregate_query, 4, 4_000, 8, SLOW_BPS),
)


def planner_regimes() -> Dict[str, Dict[str, float]]:
    """Cluster-aware plan choice vs the measured argmin per regime."""
    rows: Dict[str, Dict[str, float]] = {}
    for i, (name, make_query, n_nodes, n_rows, n_shards,
            bps) in enumerate(_REGIMES):
        deployment = DistributedScanDeployment(
            n_nodes=n_nodes, n_rows=n_rows, n_shards=n_shards,
            port=9500 + i, network_bps=bps)
        query = make_query()
        plan = deployment.plan(query)
        push = run_distributed_scan(deployment, query,
                                    plan="pushdown")
        pull = run_distributed_scan(deployment, query, plan="pull")
        measured = ("pushdown"
                    if push["elapsed_s"] < pull["elapsed_s"]
                    else "pull")
        pushdown_shards = sum(
            1 for choice in plan["choices"].values()
            if choice == "pushdown")
        rows[name] = {
            "planner_pushdown":
                1.0 if plan["cluster_choice"] == "pushdown" else 0.0,
            "measured_pushdown":
                1.0 if measured == "pushdown" else 0.0,
            "matches":
                1.0 if plan["cluster_choice"] == measured else 0.0,
            "pushdown_shard_fraction":
                pushdown_shards / len(plan["choices"]),
            "pull_ms": pull["elapsed_s"] * 1e3,
            "pushdown_ms": push["elapsed_s"] * 1e3,
            "pull_wall_ms": plan["pull_wall_s"] * 1e3,
            "pushdown_wall_ms": plan["pushdown_wall_s"] * 1e3,
            "identical": 1.0 if _exact(push["result"],
                                       pull["result"]) else 0.0,
        }
    return rows


# -- identity ---------------------------------------------------------------


def identity_matrix() -> Dict[str, float]:
    """Pushdown, pull, and auto answers for every query shape."""
    shapes = (("projection", _projection_query),
              ("aggregate", _aggregate_query),
              ("wide", _wide_query))
    all_identical = True
    auto_matches = True
    combined_crc = 0
    for i, (_name, make_query) in enumerate(shapes):
        deployment = DistributedScanDeployment(
            n_nodes=4, n_rows=8_000, n_shards=16, port=9600 + i,
            network_bps=FAST_BPS)
        query = make_query()
        push = run_distributed_scan(deployment, query,
                                    plan="pushdown")
        pull = run_distributed_scan(deployment, query, plan="pull")
        auto = run_distributed_scan(deployment, query)
        all_identical &= _exact(push["result"], pull["result"])
        auto_matches &= _exact(auto["result"], push["result"])
        combined_crc = crc32(
            _result_crc(push["result"]).to_bytes(4, "big"),
            combined_crc)
    return {
        "shapes": float(len(shapes)),
        "all_identical": 1.0 if all_identical else 0.0,
        "auto_matches": 1.0 if auto_matches else 0.0,
        "result_crc": float(combined_crc),
    }


# -- routing ----------------------------------------------------------------


def stale_routing() -> Dict[str, float]:
    """A stale coordinator's scans forward DPU-side and stay right."""
    stale = DistributedScanDeployment(
        n_nodes=4, n_rows=8_000, n_shards=16, port=9700,
        network_bps=FAST_BPS, stale_fraction=1.0)
    fresh = DistributedScanDeployment(
        n_nodes=4, n_rows=8_000, n_shards=16, port=9710,
        network_bps=FAST_BPS)
    query = _aggregate_query()
    misdirected = run_distributed_scan(stale, query, plan="pushdown")
    truth = run_distributed_scan(fresh, query, plan="pushdown")
    return {
        "forwards": float(misdirected["forwards"]),
        "matches_truth":
            1.0 if _exact(misdirected["result"],
                          truth["result"]) else 0.0,
        "sub_queries": float(len(stale.partitions)),
    }


def query_parts() -> Dict[str, object]:
    """All Q parts, artifact-ready."""
    return {
        "scatter": scatter_scaling(),
        "planner": planner_regimes(),
        "identity": identity_matrix(),
        "routing": stale_routing(),
    }
