"""AT: latency attribution, conservation, and the offload advisor.

The ``attr`` experiment exercises :mod:`repro.obs.attr` end to end
and feeds the ``AT.*`` claims:

* **conservation** — re-runs the observability scenario (three nodes,
  forwarding, a mid-run DPU crash with failover and migration) with
  an :class:`~repro.obs.attr.AttributionCollector` riding the plane,
  then asserts the tentpole invariant: every attributed request's
  per-resource segments sum to its measured end-to-end latency.
* **breakdown** — the per-node resource ledger (seconds per category)
  the regression-attribution path (``--compare``) diffs between
  artifacts.
* **advisor** — the offload advisor's static sanity check: for each
  priced kernel/size, *measure* every placement the way Figure 1
  does (host EPYC core, Arm core, BlueField-2 ASIC) and require the
  advisor's recommendation to match the measured-best placement.
* **online** — the advisor fed from observed spans: a traced
  ComputeEngine run places kernels on the host, ``build_report``
  turns the spans into a kernel census, and the advisor names the
  cycles an offload would return to the host.
* **control** — the same scenario with no plane at all must produce
  byte-identical client outcomes and counters: attribution reads,
  never perturbs (the ``OB.*`` contract, extended).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines import HostComputeBaseline
from ..buffers import SynthBuffer
from ..core.compute import ComputeEngine
from ..hardware import ARM_HOST, BLUEFIELD2, EPYC_HOST, make_server
from ..obs import (
    AttributionCollector,
    ClusterTelemetry,
    FlightRecorder,
    OffloadAdvisor,
    SloMonitor,
    Telemetry,
    build_report,
)
from ..sim import Environment
from ..units import MB, MiB
from .experiments_obs import RETAIN_S, default_slos, obs_scenario

__all__ = [
    "advisor_online",
    "advisor_static_check",
    "attr_parts",
]

#: kernel/size grid for the static advisor check (crc32 has no ASIC,
#: so it also covers the host-stays-best case)
STATIC_KERNELS = ("compress", "crc32")
STATIC_SIZES_MB = (1, 16)

#: the online part's host-placed workload (kernel, nbytes, calls)
ONLINE_WORKLOAD = (
    ("compress", 1 * MiB, 4),
    ("crc32", 1 * MiB, 4),
)


def _measure_placements(kernel: str, nbytes: int
                        ) -> Dict[str, float]:
    """Figure-1-style measured latency of each feasible placement."""
    env = Environment()
    epyc = make_server(env, name="epyc", host_profile=EPYC_HOST)
    arm = make_server(env, name="arm", host_profile=ARM_HOST)
    arm.host_cpu.cpu_class = "dpu"     # charge A72 cycles/byte
    dpu_server = make_server(env, name="bf2", dpu_profile=BLUEFIELD2)

    timings: Dict[str, float] = {}

    def core_job(path, tag):
        started = env.now
        yield from path.run_kernel(kernel, SynthBuffer(nbytes))
        timings[tag] = env.now - started

    env.process(core_job(HostComputeBaseline(epyc.host_cpu), "host"))
    env.process(core_job(HostComputeBaseline(arm.host_cpu), "arm"))
    asic_kind = dpu_server.costs.kernel(kernel).asic_kind
    if asic_kind and dpu_server.dpu.has_accelerator(asic_kind):
        asic = dpu_server.dpu.accelerator(asic_kind)

        def asic_job():
            started = env.now
            yield from asic.run_job(nbytes)
            timings["asic"] = env.now - started

        env.process(asic_job())
    env.run()
    return timings


def advisor_static_check(
    kernels: Sequence[str] = STATIC_KERNELS,
    sizes_mb: Sequence[int] = STATIC_SIZES_MB,
) -> Dict[str, Dict[str, float]]:
    """Advisor recommendation vs measured-best static placement.

    One nested config per kernel/size; ``matches`` is 1.0 when the
    advisor's argmin placement equals the measured argmin (same
    deterministic tie-break: latency, then placement name).
    """
    advisor = OffloadAdvisor()
    rows: Dict[str, Dict[str, float]] = {}
    for kernel in kernels:
        for size_mb in sizes_mb:
            nbytes = size_mb * MB
            measured = _measure_placements(kernel, nbytes)
            recommendation = advisor.recommend(kernel, nbytes)
            measured_best = min(
                measured.items(), key=lambda kv: (kv[1], kv[0]))[0]
            row: Dict[str, float] = {}
            for placement, seconds in sorted(measured.items()):
                row[f"measured_{placement}_s"] = seconds
            for placement, estimate in \
                    sorted(recommendation.estimates.items()):
                row[f"est_{placement}_s"] = estimate.latency_s
            row["matches"] = float(
                recommendation.placement == measured_best)
            row["host_cycles_saved_per_call"] = \
                recommendation.host_cycles_saved_per_call
            rows[f"{kernel}_{size_mb}mb"] = row
    return rows


def advisor_online(
    workload: Sequence = ONLINE_WORKLOAD,
) -> Dict[str, Dict[str, float]]:
    """The advisor fed from a traced ComputeEngine's observed spans.

    Every kernel runs pinned to the host CPU; the advisor then reads
    the ``ce.kernel.*`` census out of the attribution report and
    prices the alternatives — ``compress@host_cpu`` should come back
    "move to the ASIC" with the freed host cycles quantified, while
    ``crc32@host_cpu`` stays put (``already_recommended``).
    """
    env = Environment()
    telemetry = Telemetry(env, tracing=True, name="attr-online")
    server = make_server(env, name="attr", dpu_profile=BLUEFIELD2)
    engine = ComputeEngine(server, telemetry=telemetry)
    for kernel, nbytes, calls in workload:
        for _ in range(calls):
            engine.submit_kernel(kernel, SynthBuffer(nbytes),
                                 device="host_cpu")
            env.run()
    report = build_report([("attr", telemetry.tracer)])
    return OffloadAdvisor().advise(report)


def attr_parts(telemetry: Optional[ClusterTelemetry] = None
               ) -> Dict[str, object]:
    """AT: the full attribution experiment for the artifact."""
    plane = (telemetry if telemetry is not None
             else ClusterTelemetry(tracing=True, name="attr"))
    plane.monitor = SloMonitor(default_slos())
    plane.recorder = FlightRecorder(retain_s=RETAIN_S)
    plane.attribution = AttributionCollector()
    observed = obs_scenario(plane)
    control = obs_scenario(None)

    report = plane.attribution.report()
    totals = report.totals()
    total_s = sum(totals.values())
    forwarded = sum(1 for r in report.requests if r.forwarded)
    failover = sum(1 for r in report.requests if r.failover)
    incidents = plane.recorder.incidents
    conservation = {
        "requests_attributed": float(len(report.requests)),
        "conserved_fraction": report.conserved_fraction(),
        "max_abs_error_s": report.max_conservation_error_s(),
        "forwarded_requests": float(forwarded),
        "failover_requests": float(failover),
        "categories_observed": float(
            sum(1 for v in totals.values() if v > 0)),
        "queue_fraction": (totals.get("queue", 0.0) / total_s
                           if total_s > 0 else 0.0),
        "incidents_with_attribution": float(
            sum(1 for bundle in incidents
                if "attribution" in bundle)),
        "incidents": float(len(incidents)),
    }

    identical = (
        observed["ok"] == control["ok"]
        and observed["errors"] == control["errors"]
        and observed["pending"] == control["pending"]
        and observed["counters"] == control["counters"]
    )
    control_part = {
        "observed_ok": float(observed["ok"]),
        "control_ok": float(control["ok"]),
        "observed_errors": float(observed["errors"]),
        "control_errors": float(control["errors"]),
        "observed_pending": float(observed["pending"]),
        "control_pending": float(control["pending"]),
        "attr_sim_identical": float(identical),
    }

    return {
        "conservation": conservation,
        "breakdown": report.by_node(),
        "advisor": advisor_static_check(),
        "online": advisor_online(),
        "control": control_part,
    }
