"""Benchmark harness and the experiment library.

One function per paper figure/table (F1–F3, F6–F8, S9) and per
ablation (A1–A5); ``benchmarks/`` drives these and asserts the
reproduction's shape contract.
"""

from .experiments_ablation import (
    a1_parts,
    a2_parts,
    a3_parts,
    a4_parts,
    a5_parts,
    a6_parts,
    ablation_caching,
    ablation_fusion,
    ablation_partial_offload,
    ablation_persistence,
    ablation_portability,
    ablation_scheduling,
)
from .experiments_availability import (
    availability,
    availability_parts,
    availability_tcp_blackhole,
)
from .experiments_attr import (
    advisor_online,
    advisor_static_check,
    attr_parts,
)
from .experiments_obs import (
    default_slos,
    obs_parts,
    obs_scenario,
)
from .experiments_slo import (
    chaos_scenario,
    slo_parts,
)
from .experiments_query import (
    identity_matrix,
    planner_regimes,
    query_parts,
    scatter_scaling,
    stale_routing,
)
from .experiments_perf import (
    event_throughput,
    interrupt_storm,
    perf_parts,
    timeout_churn,
)
from .experiments_scale import (
    rebalance_scenarios,
    scale_goodput_and_tco,
    scale_parts,
    sharding_properties,
)
from .experiments_micro import (
    fig1_compression,
    fig1_parts,
    fig1_real_bytes_checkpoint,
    fig2_parts,
    fig2_storage_cpu,
    fig3_network_cpu,
    fig3_parts,
)
from .experiments_system import (
    LINE_RATE_MSGS_PER_S,
    fig6_parts,
    fig6_sproc,
    fig7_parts,
    fig7_rdma,
    fig8_dds_latency,
    fig8_parts,
    s9_dds_cores,
    s9_parts,
)
from .harness import CoreMeter, Sweep, SweepRow, drive_open_loop
from .reporting import banner, format_sweep, format_table, render_metrics

__all__ = [
    "ablation_caching",
    "ablation_fusion",
    "ablation_partial_offload",
    "ablation_persistence",
    "ablation_portability",
    "ablation_scheduling",
    "availability",
    "availability_tcp_blackhole",
    "fig1_compression",
    "fig1_real_bytes_checkpoint",
    "fig2_storage_cpu",
    "fig3_network_cpu",
    "event_throughput",
    "timeout_churn",
    "interrupt_storm",
    "perf_parts",
    "LINE_RATE_MSGS_PER_S",
    "fig6_sproc",
    "fig7_rdma",
    "fig8_dds_latency",
    "s9_dds_cores",
    "fig1_parts",
    "fig2_parts",
    "fig3_parts",
    "fig6_parts",
    "fig7_parts",
    "fig8_parts",
    "s9_parts",
    "a1_parts",
    "a2_parts",
    "a3_parts",
    "a4_parts",
    "a5_parts",
    "a6_parts",
    "availability_parts",
    "advisor_online",
    "advisor_static_check",
    "attr_parts",
    "default_slos",
    "obs_parts",
    "obs_scenario",
    "query_parts",
    "scatter_scaling",
    "planner_regimes",
    "identity_matrix",
    "stale_routing",
    "scale_parts",
    "scale_goodput_and_tco",
    "sharding_properties",
    "rebalance_scenarios",
    "CoreMeter",
    "Sweep",
    "SweepRow",
    "drive_open_loop",
    "banner",
    "format_sweep",
    "format_table",
    "render_metrics",
]
