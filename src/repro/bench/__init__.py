"""Benchmark harness and the experiment library.

One function per paper figure/table (F1–F3, F6–F8, S9) and per
ablation (A1–A5); ``benchmarks/`` drives these and asserts the
reproduction's shape contract.
"""

from .experiments_ablation import (
    ablation_caching,
    ablation_fusion,
    ablation_partial_offload,
    ablation_persistence,
    ablation_portability,
    ablation_scheduling,
)
from .experiments_micro import (
    fig1_compression,
    fig1_real_bytes_checkpoint,
    fig2_storage_cpu,
    fig3_network_cpu,
)
from .experiments_system import (
    LINE_RATE_MSGS_PER_S,
    fig6_sproc,
    fig7_rdma,
    fig8_dds_latency,
    s9_dds_cores,
)
from .harness import CoreMeter, Sweep, SweepRow, drive_open_loop
from .reporting import banner, format_sweep, format_table, render_metrics

__all__ = [
    "ablation_caching",
    "ablation_fusion",
    "ablation_partial_offload",
    "ablation_persistence",
    "ablation_portability",
    "ablation_scheduling",
    "fig1_compression",
    "fig1_real_bytes_checkpoint",
    "fig2_storage_cpu",
    "fig3_network_cpu",
    "LINE_RATE_MSGS_PER_S",
    "fig6_sproc",
    "fig7_rdma",
    "fig8_dds_latency",
    "s9_dds_cores",
    "CoreMeter",
    "Sweep",
    "SweepRow",
    "drive_open_loop",
    "banner",
    "format_sweep",
    "format_table",
    "render_metrics",
]
