"""SL: the overload-safe cluster under a chaos scenario matrix.

The robustness experiment the admission/backpressure/autoscale stack
exists for.  Four chaos scenarios — a flash crowd, a regional (DPU)
failover, a noisy neighbor, and a rolling upgrade — each run three
ways over identical seeded arrivals:

* **protected** — per-node :class:`~repro.core.AdmissionController`
  at the DDS ingress (token buckets from tenant budgets, bounded
  queue, deadline-aware early rejection, CoDel shed) plus, where the
  scenario calls for it, the telemetry-driven
  :class:`~repro.cluster.Autoscaler`;
* **unprotected** — the same simulation with the door wide open (a
  telemetry plane still watches, because measuring is not
  protecting);
* **bare** — the unprotected scenario with no plane at all: the
  protection-off control twin that must be byte-identical to the
  unprotected run (``twin_identical``).

Goodput is *on-time* goodput — an ok response later than
``DEADLINE_S`` counts as late, because an open-loop overload answers
everything eventually and lateness is how collapse shows.
SLO-violation-seconds are the p99-ceiling breach windows the
:class:`~repro.obs.plane.SloMonitor` fired, times the scrape
interval.

Parts:

* ``matrix`` (nested, one row per scenario) — protected vs
  unprotected on-time goodput, their ratio, violation-seconds both
  ways, and the twin-identity bit;
* ``flash`` — surge-window goodput rates against a no-surge
  steady-state baseline: admission plus reject-driven autoscaling
  keeps ≥ 90 % of steady goodput through a 2x offered surge while
  the unprotected run collapses;
* ``autoscale`` — the protected flash run's node-count record:
  scale-up happened, and the count converged within the window;
* ``hotshard`` — a skewed stream drives one shard hot; the
  autoscaler split halves the hot shard's p99 under live traffic;
* ``summary`` — matrix-wide violation-seconds ratio and the
  replay-identity conjunction.

Everything is a pure function of the seeds and sim time — arrivals,
admission verdicts, autoscale decisions and splits all replay
byte-identically, so the ``--jobs N`` identity gate covers SL too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..cluster import (AutoscalePolicy, Autoscaler, Cluster,
                       ClusterClient, Rebalancer, response_ok)
from ..core import AdmissionController
from ..core.tenancy import TenantRegistry
from ..faults import FaultInjector, FaultPlan
from ..obs import ClusterTelemetry, SloMonitor, SloSpec
from ..sim import Environment
from ..sim.fluid import HybridPlan
from ..units import PAGE_SIZE
from ..workloads.arrivals import (ParetoSizes, TenantMix, flash_crowd,
                                  mmpp_arrivals, open_loop,
                                  poisson_arrivals)
from .experiments_scale import READ_FRACTION
from ..cluster.sharding import stable_hash
from ..cluster.router import encode_shard_read, encode_shard_write

__all__ = ["slo_parts", "chaos_scenario", "SCENARIOS"]

SEED = 23

#: the on-time bound an answer must meet to count as goodput, and
#: the SLO target the monitor and the shed policy both watch
DEADLINE_S = 1.5e-3
SCRAPE_INTERVAL_S = 2.5e-4

#: admission tuning shared by every protected run
MAX_QUEUE = 128
SERVICE_RATE_OPS = 150_000.0

#: virtual ring points per node.  The 64-point default leaves a
#: 70/30 ownership split at two nodes, which drives one switch port
#: past its frame-rate ceiling long before the cluster as a whole is
#: overloaded; 512 points keep placement near-even so the chaos
#: scenarios stress capacity, not hash luck.
CLUSTER_REPLICAS = 512

#: flash-crowd shape.  Eight client machines against two nodes: a
#: client's kernel stack caps its offered load near 600K ops/s and a
#: node serves ~450K req/s, so steady state (8 x 75K = 600K) fits
#: while the surge (8 x 150K = 1.2M) is ~1.3x the two-node ceiling —
#: until the autoscaler adds nodes and clients dial them.
FLASH_CLIENTS = 8
FLASH_BASE_RATE = 75_000.0
FLASH_PEAK_RATE = 150_000.0
FLASH_SURGE_START_S = 2.0e-3
FLASH_SURGE_S = 5.0e-3
FLASH_RAMP_S = 5.0e-4
FLASH_DURATION_S = 8.0e-3
#: surge goodput is measured after the control loop has had time to
#: reject, scale, migrate and let clients discover the new nodes
SURGE_SETTLE_S = 3.0e-3
#: cluster-wide admission rejections/s that scale the flash up —
#: admission keeps p99 healthy, so rejections *are* the signal
FLASH_REJECT_RATE_HIGH = 40_000.0
#: post-load drain for in-flight requests; responses still pending
#: past the 1.5 ms deadline are late either way, so the drain only
#: needs to cover on-time completions
DRAIN_S = 2.5e-3

#: regional failover: six clients offer 1.2M ops/s across three
#: nodes (~0.9x) until node1's DPU dies — the two survivors then
#: face ~1.3x their combined capacity.  Five milliseconds of
#: post-fault overload is what the violation and goodput claims
#: integrate over; the pre-fault steady stretch is fluid-solved.
FAILOVER_CLIENTS = 6
FAILOVER_RATE = 200_000.0
FAILOVER_DURATION_S = 7.0e-3
FAULT_START_S = 2.0e-3

#: noisy neighbor: four metered batch clients burst next to one
#: steady pro tenant on three nodes.  The burst-heavy MMPP duty
#: cycle overlaps past the nodes' *serve* capacity (~1.35M ops/s)
#: while staying under the switch ports' frame ceiling — the regime
#: admission can actually protect: refusing the flood at the door
#: keeps the service queues short for the tenant with an SLO.
PRO_RATE = 40_000.0
NOISY_NODES = 3
BATCH_CLIENTS = 4
BATCH_RATES = (80_000.0, 380_000.0)
BATCH_DWELL_S = (2.5e-4, 7.5e-4)
BATCH_BUDGET_OPS = 30_000.0
NOISY_DURATION_S = 4.0e-3

#: rolling upgrade: six clients offer 1.2M ops/s — three nodes carry
#: it fine, the two-node gap while node2's replacement joins is ~1.3x
UPGRADE_CLIENTS = 6
UPGRADE_RATE = 200_000.0
UPGRADE_DURATION_S = 7.0e-3
UPGRADE_START_S = 1.5e-3

#: hybrid fluid mode (:mod:`repro.sim.fluid`): every chaos scenario
#: knows its transition times a priori, so the steady stretch before
#: the trigger (and, for the no-surge flash baseline, the steady
#: stretches outside the measured window) is solved flow-level
#: instead of event-by-event.  All three matrix modes install the
#: *same* plan, so the protection-off twin stays byte-identical and
#: protected/unprotected ratios compare like-for-like; the claims
#: contract (tolerances, re-baselined magnitudes) replaces byte
#: identity against the all-events run.  Set HYBRID = False to
#: recover the pure-DES scenarios.
HYBRID = True
#: event-level lead-in before the first fluid window (client ramp,
#: cwnd growth) and the slice the flow rates are calibrated over
FLUID_LEAD_S = 5.0e-4
FLUID_CALIBRATE_S = 2.5e-4
#: event-level guard left ahead of every declared transition
FLUID_GUARD_S = 2.0e-4

#: hot-shard scenario: a skewed stream pins ~1.2x one node's
#: capacity onto a single shard until the autoscaler splits it
HOT_SHARD = 7
HOT_FRACTION = 0.75
HOT_RATE = 300_000.0
HOT_DURATION_S = 8.0e-3
#: the post-cutover drain transient excluded from the after-split p99
HOT_SETTLE_S = 1.0e-3

#: the tenant population the flash crowd arrives as (admission
#: attributes each request; none of these carries a rate limit)
FLASH_TENANTS = {"web": 0.6, "mobile": 0.3, "api": 0.1}


#: the client-observed SLO: each scrape window, at least this
#: fraction of a client's answers must be ok and on time.  Client-
#: observed because the collapse lives upstream of the nodes (switch
#: port queues, network acks) where server-side p99 never sees it.
ONTIME_FLOOR = 0.5


def _slos() -> Tuple[SloSpec, ...]:
    """The matrix's SLO: a per-window on-time answer floor."""
    return (
        SloSpec("ontime_floor", metric="ontime_fraction",
                bound=ONTIME_FLOOR, kind="min", min_windows=2),
    )


def _plane(name: str) -> ClusterTelemetry:
    plane = ClusterTelemetry(tracing=False, name=name,
                             scrape_interval_s=SCRAPE_INTERVAL_S)
    plane.monitor = SloMonitor(_slos())
    return plane


def _arm_admission(env, cluster, plane,
                   tenant_limits: Optional[Dict[str, Dict]] = None
                   ) -> Callable:
    """Put an AdmissionController on every node; return the hook.

    The returned callable arms one more node — handed to the
    :class:`Autoscaler` as ``node_hook`` so scaled-up nodes are born
    protected too.
    """
    limits = tenant_limits or {}

    def arm(node):
        tenants = TenantRegistry(env)
        for tenant, kwargs in sorted(limits.items()):
            tenants.register(tenant, **kwargs)
        registry = (plane.node(node.name).metrics
                    if plane is not None else None)
        node.dds.admission = AdmissionController(
            env, tenants, registry=registry, max_queue=MAX_QUEUE,
            service_rate_ops=SERVICE_RATE_OPS,
            slo_target_s=DEADLINE_S,
            name=f"admission.{node.name}")

    for node in cluster.nodes:
        arm(node)
    return arm


def _chaos_stream(seed: int, client_index: int, count: int,
                  n_shards: int, shard_bytes: int,
                  tenant_for: Optional[Callable[[int], str]] = None,
                  sizes: Optional[ParetoSizes] = None,
                  hot_shard: Optional[int] = None,
                  hot_fraction: float = 0.0) -> List[Tuple]:
    """One client's deterministic (message, shard, offset) stream."""
    shard_pages = shard_bytes // PAGE_SIZE
    stream = []
    for k in range(count):
        tag = f"{seed}:{client_index}:{k}"
        if (hot_shard is not None
                and stable_hash(f"hot:{tag}") % 10_000
                < hot_fraction * 10_000):
            shard = hot_shard
        else:
            shard = stable_hash(f"sh:{tag}") % n_shards
        page = stable_hash(f"of:{tag}") % shard_pages
        offset = page * PAGE_SIZE
        tenant = tenant_for(k) if tenant_for is not None else None
        write = (stable_hash(f"rw:{tag}") % 10_000
                 >= READ_FRACTION * 10_000)
        if write:
            message = encode_shard_write(shard, offset, tenant=tenant)
        else:
            size = PAGE_SIZE
            if sizes is not None:
                size = min(sizes.size(k),
                           shard_bytes - offset)
                size = max(size, 64)
            message = encode_shard_read(shard, offset, size=size,
                                        tenant=tenant)
        stream.append((message, shard, offset))
    return stream


def _handler(client: ClusterClient, stream: List[Tuple]):
    def handle(k: int) -> None:
        message, shard, offset = stream[k % len(stream)]
        client.submit(message, shard, tag=k, offset=offset)
    return handle


def _fluid_plan(env, cluster, populations, windows) -> Optional[HybridPlan]:
    """Install the scenario's hybrid plan over absolute windows.

    Windows too short to calibrate are dropped rather than clamped, so
    a slow setup phase can never push a skip into a transition.
    """
    if not HYBRID:
        return None
    plan = HybridPlan(env, name="slo-fluid")
    plan.population(*populations)
    for node in cluster.nodes:
        plan.resource(node.server.host_cpu.core_pool,
                      node.server.dpu.cpu.core_pool)
    installed = 0
    for t0, t1 in windows:
        if t1 - t0 > 2 * FLUID_CALIBRATE_S:
            plan.window(t0, t1, FLUID_CALIBRATE_S)
            installed += 1
    return plan if installed else None


def _violation_seconds(plane: Optional[ClusterTelemetry]) -> float:
    """Seconds of scrape windows with at least one SLO breach.

    Unique windows, not raw violation entries: eight clients
    breaching the same window is one window of unavailability, and
    counting entries would reward runs that simply watch fewer
    clients.
    """
    if plane is None or plane.monitor is None:
        return 0.0
    windows = {violation.version
               for violation in plane.monitor.violations}
    return len(windows) * SCRAPE_INTERVAL_S


def _collect(clients: List[ClusterClient], cluster: Cluster,
             plane: Optional[ClusterTelemetry]) -> Dict[str, object]:
    per_client = [client.outcomes(deadline_s=DEADLINE_S)
                  for client in clients]
    totals = {"ok": 0, "errors": 0, "pending": 0, "late": 0}
    for outcome in per_client:
        for key in totals:
            totals[key] += outcome[key]
    return {
        **totals,
        "per_client": per_client,
        "counters": cluster.metrics_snapshot(),
        "violation_s": _violation_seconds(plane),
    }


def _ontime_in_window(client: ClusterClient, lo_s: float,
                      hi_s: float) -> int:
    """On-time ok responses submitted inside ``[lo_s, hi_s)``."""
    count = 0
    for request, (_shard, submitted) in zip(client.requests,
                                            client.request_meta):
        if not (lo_s <= submitted < hi_s):
            continue
        if (request.completed and not request.failed
                and request.latency <= DEADLINE_S
                and response_ok(request.data)):
            count += 1
    return count


def _p99(samples: List[float]) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))]


# -- the four chaos scenarios ------------------------------------------------------


def _run_flash(protected: bool, plane: Optional[ClusterTelemetry],
               surge: bool = True) -> Dict[str, object]:
    """Flash crowd against two nodes; autoscaler when protected.

    Every mode runs client-side topology tracking — in an
    unprotected run no node ever joins, so the poll is a no-op and
    the control twin stays byte-identical.  ``surge=False`` is the
    steady-state baseline the flash claims normalize against — same
    everything, base rate throughout.
    """
    env = Environment()
    cluster = Cluster(env, 2, replicas=CLUSTER_REPLICAS, telemetry=plane)
    rebalancer = Rebalancer(cluster)
    autoscaler = None
    if protected:
        hook = _arm_admission(env, cluster, plane)
        autoscaler = Autoscaler(
            cluster, plane, rebalancer,
            interval_s=SCRAPE_INTERVAL_S,
            policy=AutoscalePolicy(
                p99_high_s=1.2e-3, p99_low_s=0.0,
                occupancy_low=0.0, min_nodes=2, max_nodes=4,
                cooldown_s=1.0e-3, hot_shard_ratio=1e6,
                min_heat=1e9, min_windows=2,
                reject_rate_high=FLASH_REJECT_RATE_HIGH),
            node_hook=hook)
    clients = [ClusterClient(cluster, f"client{i}",
                             home=f"node{i % 2}",
                             sli_plane=plane,
                             sli_deadline_s=DEADLINE_S,
                             stamp_deadline_s=DEADLINE_S)
               for i in range(FLASH_CLIENTS)]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    for client in clients:
        env.process(client.track_topology(),
                    name=f"{client.name}-topo")
    mix = TenantMix(FLASH_TENANTS, seed=SEED)
    peak = int(FLASH_PEAK_RATE * FLASH_DURATION_S) + 1
    streams = [
        _chaos_stream(SEED, i, peak, cluster.shardmap.n_shards,
                      cluster.shard_bytes, tenant_for=mix.tenant)
        for i in range(FLASH_CLIENTS)
    ]
    start = env.now
    populations = []
    for i in range(FLASH_CLIENTS):
        if surge:
            populations.append(flash_crowd(
                env, _handler(clients[i], streams[i]),
                FLASH_DURATION_S, FLASH_BASE_RATE,
                FLASH_PEAK_RATE, FLASH_SURGE_START_S,
                FLASH_SURGE_S, ramp_s=FLASH_RAMP_S,
                seed=SEED + i, name=f"flash{i}"))
        else:
            populations.append(poisson_arrivals(
                env, FLASH_BASE_RATE,
                _handler(clients[i], streams[i]),
                FLASH_DURATION_S, seed=SEED + i,
                name=f"steady{i}"))
    if surge:
        # steady below capacity until the surge ramp: fluid-solve it
        windows = [(start + FLUID_LEAD_S,
                    start + FLASH_SURGE_START_S - FLUID_GUARD_S)]
    else:
        # the no-surge baseline is steady throughout; only the
        # measured window (and a re-fill lead before it) must run
        # event-level
        lo = FLASH_SURGE_START_S + SURGE_SETTLE_S
        hi = FLASH_SURGE_START_S + FLASH_SURGE_S
        windows = [(start + FLUID_LEAD_S,
                    start + lo - FLUID_CALIBRATE_S),
                   (start + hi + FLUID_CALIBRATE_S,
                    start + FLASH_DURATION_S - 1.0e-4)]
    _fluid_plan(env, cluster, populations, windows)
    env.run(until=start + FLASH_DURATION_S + DRAIN_S)
    result = _collect(clients, cluster, plane)
    result["clients"] = clients
    result["autoscaler"] = autoscaler
    return result


def _run_failover(protected: bool,
                  plane: Optional[ClusterTelemetry]
                  ) -> Dict[str, object]:
    """node1's DPU dies under load; survivors absorb the region.

    Admission alone cannot save this one — the survivors' overload
    queues upstream of the nodes — so the protected run also heals:
    the autoscaler sees the survivors' latency and rejection signals
    and provisions replacement capacity while the drain is still in
    flight.
    """
    env = Environment()
    plan = FaultPlan(seed=SEED).cpu_crash(
        FAULT_START_S, 10 * FAILOVER_DURATION_S,
        site="cpu.node1.dpu.cpu")
    injector = FaultInjector(env, plan)
    cluster = Cluster(env, 3, replicas=CLUSTER_REPLICAS, injector=injector, telemetry=plane)
    rebalancer = Rebalancer(cluster)
    if protected:
        hook = _arm_admission(env, cluster, plane)
        if plane is not None:
            Autoscaler(
                cluster, plane, rebalancer,
                interval_s=SCRAPE_INTERVAL_S,
                policy=AutoscalePolicy(
                    p99_high_s=1.2e-3, p99_low_s=0.0,
                    occupancy_low=0.0, min_nodes=3, max_nodes=5,
                    cooldown_s=5.0e-4, hot_shard_ratio=1e6,
                    min_heat=1e9, min_windows=1,
                    reject_rate_high=FLASH_REJECT_RATE_HIGH),
                node_hook=hook)
    clients = [ClusterClient(cluster, f"client{i}",
                             home=f"node{i % 3}", stale_fraction=0.1,
                             sli_plane=plane,
                             sli_deadline_s=DEADLINE_S,
                             stamp_deadline_s=DEADLINE_S)
               for i in range(FAILOVER_CLIENTS)]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    for client in clients:
        env.process(client.track_topology(),
                    name=f"{client.name}-topo")
    count = int(FAILOVER_RATE * FAILOVER_DURATION_S) + 1
    streams = [
        _chaos_stream(SEED, i, count, cluster.shardmap.n_shards,
                      cluster.shard_bytes)
        for i in range(FAILOVER_CLIENTS)
    ]
    start = env.now
    populations = [
        open_loop(env, FAILOVER_RATE, _handler(clients[i], streams[i]),
                  FAILOVER_DURATION_S, name=f"load{i}")
        for i in range(FAILOVER_CLIENTS)
    ]
    # the fault plan's clock is absolute, so the pre-fault steady
    # window is bounded by FAULT_START_S, not by an offset from start
    _fluid_plan(env, cluster, populations,
                [(start + FLUID_LEAD_S,
                  FAULT_START_S - FLUID_GUARD_S)])
    env.run(until=start + FAILOVER_DURATION_S + DRAIN_S)
    return _collect(clients, cluster, plane)


def _run_noisy(protected: bool,
               plane: Optional[ClusterTelemetry]
               ) -> Dict[str, object]:
    """A bursty batch tenant floods next to a steady pro tenant.

    Protection is the batch tenant's token-bucket budget: the MMPP
    flood is refused at the door with retry-after hints while the pro
    tenant's unmetered traffic sails through.  Only the pro tenant
    holds an SLO — batch is best-effort by contract, so its refused
    bursts are not availability violations — and the monitor is
    scoped identically in every mode.
    """
    env = Environment()
    if plane is not None:
        plane.monitor = SloMonitor((
            SloSpec("pro_ontime_floor", metric="ontime_fraction",
                    bound=ONTIME_FLOOR, kind="min", node="pro",
                    min_windows=2),
        ))
    cluster = Cluster(env, NOISY_NODES, replicas=CLUSTER_REPLICAS,
                      telemetry=plane)
    Rebalancer(cluster)
    if protected:
        _arm_admission(env, cluster, plane, tenant_limits={
            "batch": {"rate_limit_ops_per_s": BATCH_BUDGET_OPS,
                      "burst_ops": 16.0},
            "pro": {},
        })
    pro = ClusterClient(cluster, "pro", home="node0",
                        sli_plane=plane, sli_deadline_s=DEADLINE_S,
                        stamp_deadline_s=DEADLINE_S)
    batch_clients = [ClusterClient(cluster, f"batch{i}",
                                   home=f"node{i % NOISY_NODES}",
                                   sli_plane=plane,
                                   sli_deadline_s=DEADLINE_S,
                                   stamp_deadline_s=DEADLINE_S)
                     for i in range(BATCH_CLIENTS)]
    clients = [pro] + batch_clients

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    sizes = ParetoSizes(alpha=1.3, min_size=512,
                        max_size=4 * PAGE_SIZE, seed=SEED)
    pro_count = int(PRO_RATE * NOISY_DURATION_S) + 1
    batch_count = int(max(BATCH_RATES) * NOISY_DURATION_S) + 1
    pro_stream = _chaos_stream(
        SEED, 0, pro_count, cluster.shardmap.n_shards,
        cluster.shard_bytes, tenant_for=lambda k: "pro")
    batch_streams = [
        _chaos_stream(SEED, 1 + i, batch_count,
                      cluster.shardmap.n_shards,
                      cluster.shard_bytes,
                      tenant_for=lambda k: "batch", sizes=sizes)
        for i in range(BATCH_CLIENTS)
    ]
    start = env.now
    poisson_arrivals(env, PRO_RATE, _handler(pro, pro_stream),
                     NOISY_DURATION_S, seed=SEED, name="pro")
    # Staggered seeds desynchronize the four MMPP phase machines, so
    # the flood arrives as overlapping bursts rather than lockstep.
    for i, client in enumerate(batch_clients):
        mmpp_arrivals(env, _handler(client, batch_streams[i]),
                      NOISY_DURATION_S, rates=BATCH_RATES,
                      dwell_s=BATCH_DWELL_S, seed=SEED + 1 + i,
                      name=f"batch{i}")
    env.run(until=start + NOISY_DURATION_S + DRAIN_S)
    result = _collect(clients, cluster, plane)
    result["pro_outcome"] = pro.outcomes(deadline_s=DEADLINE_S)
    return result


def _run_upgrade(protected: bool,
                 plane: Optional[ClusterTelemetry]
                 ) -> Dict[str, object]:
    """Rolling upgrade: drain node2 live, join its replacement."""
    env = Environment()
    cluster = Cluster(env, 3, replicas=CLUSTER_REPLICAS, telemetry=plane)
    rebalancer = Rebalancer(cluster)
    hook = None
    if protected:
        hook = _arm_admission(env, cluster, plane)
    clients = [ClusterClient(cluster, f"client{i}",
                             home=f"node{i % 3}",
                             sli_plane=plane,
                             sli_deadline_s=DEADLINE_S,
                             stamp_deadline_s=DEADLINE_S)
               for i in range(UPGRADE_CLIENTS)]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    # The replacement node joins in every mode, so every mode's
    # clients dial it — identical in unprotected and bare.
    for client in clients:
        env.process(client.track_topology(),
                    name=f"{client.name}-topo")

    def join_replacement():
        # The replacement boots, joins the ring with moving shards
        # pinned to their current owners, and pulls them live — the
        # same join protocol the autoscaler uses.
        node = cluster.add_node()
        if hook is not None:
            hook(node)
        rebalancer.watch(node)
        plan = cluster.shardmap.join_node(node.name)
        by_source: Dict[str, List[int]] = {}
        for shard, source in sorted(plan.items()):
            by_source.setdefault(source, []).append(shard)
        pullers = [
            env.process(
                rebalancer.pull(cluster.node(source), node, shards),
                name=f"upgrade-pull-{node.name}<-{source}")
            for source, shards in sorted(by_source.items())
        ]
        if pullers:
            yield env.all_of(pullers)

    def upgrade():
        yield env.timeout(UPGRADE_START_S)
        victim = cluster.node("node2")
        if protected:
            # Make-before-break: the replacement is in the ring and
            # populated *before* the old node drains, so capacity
            # never dips below three nodes.
            yield from join_replacement()
            yield from rebalancer.drain(victim)
        else:
            # Break-before-make: the fleet runs one node short for
            # the whole drain-plus-join window.
            yield from rebalancer.drain(victim)
            yield from join_replacement()

    env.process(upgrade(), name="upgrade")
    count = int(UPGRADE_RATE * UPGRADE_DURATION_S) + 1
    streams = [
        _chaos_stream(SEED, i, count, cluster.shardmap.n_shards,
                      cluster.shard_bytes)
        for i in range(UPGRADE_CLIENTS)
    ]
    start = env.now
    populations = [
        open_loop(env, UPGRADE_RATE, _handler(clients[i], streams[i]),
                  UPGRADE_DURATION_S, name=f"load{i}")
        for i in range(UPGRADE_CLIENTS)
    ]
    _fluid_plan(env, cluster, populations,
                [(start + FLUID_LEAD_S,
                  start + UPGRADE_START_S - FLUID_GUARD_S)])
    env.run(until=start + UPGRADE_DURATION_S + DRAIN_S)
    return _collect(clients, cluster, plane)


#: scenario key -> runner(protected, plane) — the chaos matrix
SCENARIOS: Tuple[Tuple[str, Callable], ...] = (
    ("flash_crowd", _run_flash),
    ("regional_failover", _run_failover),
    ("noisy_neighbor", _run_noisy),
    ("rolling_upgrade", _run_upgrade),
)


def chaos_scenario(key: str, protected: bool,
                   observed: bool = True) -> Dict[str, object]:
    """Run one matrix cell (for tests); ``observed=False`` is bare."""
    runner = dict(SCENARIOS)[key]
    plane = _plane(f"slo-{key}") if observed else None
    return runner(protected, plane)


def _run_hotshard() -> Dict[str, object]:
    """A skewed stream makes one shard hot; the autoscaler splits it.

    Returns the hot shard's on-time p99 before and after the split
    cutover, measured from the clients' own request records.
    """
    env = Environment()
    plane = _plane("slo-hotshard")
    cluster = Cluster(env, 2, replicas=CLUSTER_REPLICAS, telemetry=plane)
    rebalancer = Rebalancer(cluster)
    hook = _arm_admission(env, cluster, plane)
    autoscaler = Autoscaler(
        cluster, plane, rebalancer,
        interval_s=SCRAPE_INTERVAL_S,
        policy=AutoscalePolicy(
            p99_high_s=1.0, p99_low_s=0.0, occupancy_low=0.0,
            min_nodes=2, max_nodes=2, cooldown_s=1.0e-3,
            hot_shard_ratio=3.0, min_heat=60.0, min_windows=4),
        node_hook=hook)
    clients = [ClusterClient(cluster, f"client{i}", home=f"node{i}",
                             sli_plane=plane,
                             sli_deadline_s=DEADLINE_S,
                             stamp_deadline_s=DEADLINE_S)
               for i in range(2)]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    count = int(HOT_RATE * HOT_DURATION_S) + 1
    streams = [
        _chaos_stream(SEED, i, count, cluster.shardmap.n_shards,
                      cluster.shard_bytes, hot_shard=HOT_SHARD,
                      hot_fraction=HOT_FRACTION)
        for i in range(2)
    ]
    start = env.now
    for i in range(2):
        open_loop(env, HOT_RATE, _handler(clients[i], streams[i]),
                  HOT_DURATION_S, name=f"skew{i}")
    env.run(until=start + HOT_DURATION_S + DRAIN_S)

    split_t = (autoscaler.split_history[0][0]
               if autoscaler.split_history else float("inf"))
    before: List[float] = []
    after: List[float] = []
    for client in clients:
        for request, (shard, submitted) in zip(client.requests,
                                               client.request_meta):
            if shard != HOT_SHARD or not request.completed \
                    or request.failed:
                continue
            if submitted < split_t:
                before.append(request.latency)
            elif submitted >= split_t + HOT_SETTLE_S:
                # The settle gap drains the pre-split backlog; its
                # requests belong to neither regime.
                after.append(request.latency)
    return {
        "split_happened": float(bool(autoscaler.split_history)),
        "split_t_s": (split_t if autoscaler.split_history else -1.0),
        "splits": float(autoscaler.splits.value),
        "p99_before_s": _p99(before),
        "p99_after_s": _p99(after),
        "hot_requests_before": float(len(before)),
        "hot_requests_after": float(len(after)),
    }


# -- the artifact ------------------------------------------------------------------


def _twin_identical(unprotected: Dict, bare: Dict) -> bool:
    return (unprotected["per_client"] == bare["per_client"]
            and unprotected["counters"] == bare["counters"])


def slo_parts(telemetry=None) -> Dict[str, object]:
    """SL: the chaos matrix, the flash baseline, and the hot split.

    ``telemetry`` is accepted for CLI uniformity and unused: every
    cell builds its own private plane (twelve simulations can't share
    one scrape loop).
    """
    matrix: Dict[str, Dict[str, float]] = {}
    protected_violation_s = unprotected_violation_s = 0.0
    twins = []
    cells: Dict[str, Dict[str, Dict]] = {}
    for key, runner in SCENARIOS:
        protected = runner(True, _plane(f"slo-{key}-p"))
        unprotected = runner(False, _plane(f"slo-{key}-u"))
        bare = runner(False, None)
        identical = _twin_identical(unprotected, bare)
        twins.append(identical)
        protected_violation_s += protected["violation_s"]
        unprotected_violation_s += unprotected["violation_s"]
        matrix[key] = {
            "protected_ontime_ok": float(protected["ok"]),
            "unprotected_ontime_ok": float(unprotected["ok"]),
            "goodput_ratio": (protected["ok"]
                              / max(unprotected["ok"], 1)),
            "protected_violation_s": protected["violation_s"],
            "unprotected_violation_s": unprotected["violation_s"],
            "protected_late": float(protected["late"]),
            "unprotected_late": float(unprotected["late"]),
            # Errors in a protected run are overwhelmingly typed
            # admission rejections (retry-after contract); an
            # unprotected run has none to give.
            "protected_errors": float(protected["errors"]),
            "unprotected_errors": float(unprotected["errors"]),
            "twin_identical": float(identical),
        }
        if "pro_outcome" in protected:
            pro_p = protected["pro_outcome"]["ok"]
            pro_u = unprotected["pro_outcome"]["ok"]
            matrix[key]["protected_pro_ontime"] = float(pro_p)
            matrix[key]["unprotected_pro_ontime"] = float(pro_u)
            matrix[key]["pro_goodput_ratio"] = pro_p / max(pro_u, 1)
            matrix[key]["protected_pro_late"] = float(
                protected["pro_outcome"]["late"])
            matrix[key]["unprotected_pro_late"] = float(
                unprotected["pro_outcome"]["late"])
        cells[key] = {"protected": protected,
                      "unprotected": unprotected}

    # -- flash crowd vs its steady-state baseline ----------------------------
    steady = _run_flash(True, _plane("slo-steady"), surge=False)
    # Measure the back half of the surge: by then the protected
    # cluster has rejected, scaled and been re-dialed by clients,
    # while the unprotected one is deep in queueing collapse.
    window_lo = FLASH_SURGE_START_S + SURGE_SETTLE_S
    window_hi = FLASH_SURGE_START_S + FLASH_SURGE_S
    window = window_hi - window_lo

    def surge_rate(run: Dict) -> float:
        ontime = sum(_ontime_in_window(client, window_lo, window_hi)
                     for client in run["clients"])
        return ontime / window

    steady_rate = surge_rate(steady)
    flash_protected = cells["flash_crowd"]["protected"]
    flash_unprotected = cells["flash_crowd"]["unprotected"]
    flash = {
        "steady_goodput_ops": steady_rate,
        "protected_surge_goodput_ops": surge_rate(flash_protected),
        "unprotected_surge_goodput_ops":
            surge_rate(flash_unprotected),
        "protected_surge_ratio": (surge_rate(flash_protected)
                                  / max(steady_rate, 1.0)),
        "unprotected_surge_ratio": (surge_rate(flash_unprotected)
                                    / max(steady_rate, 1.0)),
    }

    # -- autoscale convergence (the protected flash run's record) ------------
    autoscaler = flash_protected["autoscaler"]
    counts = [n for (_t, n) in autoscaler.node_counts]
    tail = counts[-max(len(counts) // 4, 1):]
    autoscale = {
        "initial_nodes": float(counts[0]) if counts else 0.0,
        "peak_nodes": float(max(counts, default=0)),
        "final_nodes": float(counts[-1]) if counts else 0.0,
        "scale_ups": float(autoscaler.scale_ups.value),
        "scale_downs": float(autoscaler.scale_downs.value),
        "scaled_up": float(bool(counts)
                           and max(counts) > counts[0]),
        "converged": float(bool(tail)
                           and all(n == tail[-1] for n in tail)),
    }

    hotshard = _run_hotshard()
    hotshard["p99_split_ratio"] = (
        hotshard["p99_before_s"] / hotshard["p99_after_s"]
        if hotshard["p99_after_s"] > 0 else 0.0)

    summary = {
        "scenarios": float(len(SCENARIOS)),
        "protected_violation_s": protected_violation_s,
        "unprotected_violation_s": unprotected_violation_s,
        # floor the denominator at one scrape window so a perfectly
        # clean protected matrix still yields a finite ratio
        "violation_seconds_ratio": (
            unprotected_violation_s
            / max(protected_violation_s, SCRAPE_INTERVAL_S)),
        "twins_identical": float(all(twins)),
    }
    return {
        "matrix": matrix,
        "flash": flash,
        "autoscale": autoscale,
        "hotshard": hotshard,
        "summary": summary,
    }
