"""Ablations A1–A5: the design choices DESIGN.md calls out.

A1 — sproc scheduling disciplines (FCFS / DRR / hybrid).
A2 — DPU portability: the same sproc across all SKU profiles.
A3 — file-cache placement: host vs DPU vs split (Section 9).
A4 — fast persistence: DPU-journal ack vs regular durable write.
A5 — partial offloading under a replay-heavy request mix (Section 7).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..buffers import SynthBuffer
from ..core import ComputeEngine
from ..core.storage import StorageEngine
from ..hardware import (
    BLUEFIELD2,
    DPU_PROFILES,
    make_server,
)
from ..sim import Environment
from ..units import MiB, PAGE_SIZE
from .harness import Sweep
from .experiments_system import fig6_sproc

__all__ = [
    "ablation_scheduling",
    "ablation_portability",
    "ablation_caching",
    "ablation_persistence",
    "ablation_partial_offload",
    "ablation_fusion",
    "a1_parts",
    "a2_parts",
    "a3_parts",
    "a4_parts",
    "a5_parts",
    "a6_parts",
]


# ---------------------------------------------------------------- A1


def ablation_scheduling(
    policies: Sequence[str] = ("fcfs", "drr", "hybrid"),
    n_short: int = 300,
    n_long: int = 30,
) -> Dict[str, Dict[str, float]]:
    """A1: p99 queueing delay of short sprocs under each policy.

    A *burst* workload (everything arrives at once, as a packet burst
    would): many short sprocs (~50 K cycles) interleaved with a
    minority of long ones (~5 M cycles) from a different tenant.
    FCFS head-of-line-blocks the short tasks behind the elephants;
    DRR/hybrid protect them.
    """
    results: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        env = Environment()
        server = make_server(env, dpu_profile=BLUEFIELD2)
        engine = ComputeEngine(server, policy=policy)
        engine.tenants.register("batch")

        def short_sproc(ctx, arg):
            yield from ctx.compute(50_000)

        def long_sproc(ctx, arg):
            yield from ctx.compute(5_000_000)

        engine.register_sproc("short", short_sproc,
                              estimated_cycles=50_000)
        engine.register_sproc("long", long_sproc,
                              estimated_cycles=5_000_000)

        long_every = (n_short + n_long) // max(n_long, 1)
        requests = []
        longs_submitted = 0
        for i in range(n_short + n_long):
            if i % long_every == 0 and longs_submitted < n_long:
                requests.append(engine.invoke("long", tenant="batch"))
                longs_submitted += 1
            else:
                requests.append(engine.invoke("short"))
        env.run(until=env.all_of([r.done for r in requests]))
        results[policy] = {
            "short_wait_p99_s": engine.scheduler.wait_time_short.p99,
            "short_wait_mean_s": engine.scheduler.wait_time_short.mean,
            "long_wait_p99_s": engine.scheduler.wait_time_long.p99,
            "makespan_s": env.now,
        }
    return results


# ---------------------------------------------------------------- A2


def ablation_portability(
    profile_names: Sequence[str] = ("bluefield2", "bluefield3",
                                    "intel-ipu", "generic-dpu"),
) -> Dict[str, Dict[str, float]]:
    """A2: the unmodified Figure-6 sproc on every DPU profile."""
    results: Dict[str, Dict[str, float]] = {}
    for name in profile_names:
        profile = DPU_PROFILES[name]
        outcome = fig6_sproc(profile, "specified", n_invocations=10)
        outcome["has_compression_asic"] = float(
            profile.has_accelerator("compression")
        )
        results[name] = outcome
    return results


# ---------------------------------------------------------------- A3


def ablation_caching(
    dpu_share_points: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    total_cache_bytes: int = 24 * MiB,
    n_requests: int = 1500,
    hot_pages: int = 4096,           # 32 MiB hot set > either half
) -> Sweep:
    """A3: split one cache budget between host and DPU memory.

    The workload is half *local* reads (host application via the SE
    rings — host-cache friendly) and half *remote* reads (offloaded
    DPU path — DPU-cache friendly) over a hot set larger than either
    cache half, so placement genuinely matters.  The cache is warmed
    with an equal number of unrecorded requests first.
    """
    sweep = Sweep("dpu_share")
    for dpu_share in dpu_share_points:
        env = Environment()
        server = make_server(env, dpu_profile=BLUEFIELD2)
        se = StorageEngine(
            server,
            dpu_cache_bytes=int(total_cache_bytes * dpu_share) or 1,
            host_cache_bytes=int(
                total_cache_bytes * (1 - dpu_share)
            ) or 1,
        )
        file_id = se.create("db", size=512 * MiB)
        import random
        rng = random.Random(71)
        local_latency = []
        remote_latency = []

        def one_request(i, record):
            page = rng.randrange(hot_pages)
            offset = page * PAGE_SIZE
            if i % 2 == 0:
                started = env.now
                request = se.read(file_id, offset, PAGE_SIZE)
                yield request.done
                if record:
                    local_latency.append(env.now - started)
            else:
                started = env.now
                yield from se.dpu_read(file_id, offset, PAGE_SIZE)
                if record:
                    remote_latency.append(env.now - started)

        def run_mixed():
            for i in range(n_requests):            # warmup
                yield from one_request(i, record=False)
            for i in range(n_requests):            # measured
                yield from one_request(i, record=True)

        env.run(until=env.process(run_mixed()))
        sweep.add(
            dpu_share,
            local_mean_s=sum(local_latency) / len(local_latency),
            remote_mean_s=sum(remote_latency) / len(remote_latency),
            combined_mean_s=(
                (sum(local_latency) + sum(remote_latency))
                / (len(local_latency) + len(remote_latency))
            ),
            dpu_hit_rate=(se.dpu_cache.hit_rate()
                          if se.dpu_cache else 0.0),
            host_hit_rate=(se.host_cache.hit_rate()
                           if se.host_cache else 0.0),
        )
    return sweep


# ---------------------------------------------------------------- A4


def ablation_persistence(n_writes: int = 100) -> Dict[str, float]:
    """A4: ack latency of regular vs fast-persistent writes."""
    env = Environment()
    server = make_server(env, dpu_profile=BLUEFIELD2)
    se = StorageEngine(server)
    file_id = se.create("log", size=64 * MiB)
    regular = []
    persistent = []

    def driver():
        for i in range(n_writes):
            request = se.write(file_id, (i % 4096) * PAGE_SIZE,
                               SynthBuffer(PAGE_SIZE))
            yield request.done
            regular.append(request.latency)
        for i in range(n_writes):
            request = se.write_persistent(
                file_id, (i % 4096) * PAGE_SIZE, SynthBuffer(PAGE_SIZE)
            )
            yield request.done
            persistent.append(request.latency)

    env.run(until=env.process(driver()))
    regular_mean = sum(regular) / len(regular)
    persistent_mean = sum(persistent) / len(persistent)
    return {
        "regular_write_mean_s": regular_mean,
        "persistent_ack_mean_s": persistent_mean,
        "speedup": regular_mean / persistent_mean,
    }


# ---------------------------------------------------------------- A6


def ablation_fusion(
    sizes_mb: Sequence[int] = (1, 4, 16, 64),
) -> Sweep:
    """A6: DP-kernel fusion on a PCIe GPU (Section 5 extension).

    A decompress→filter scan pipeline over compressed pages, run three
    ways: fused on the GPU (one launch, intermediates stay on-device),
    unfused on the GPU (two launches + PCIe round trips for the
    intermediate), and unfused on DPU cores.
    """
    from ..hardware import GPU_SPEC
    from ..units import MB

    sweep = Sweep("size_mb")
    for size_mb in sizes_mb:
        env = Environment()
        server = make_server(env, dpu_profile=BLUEFIELD2,
                             peer_specs=(GPU_SPEC,))
        engine = ComputeEngine(server)
        payload = SynthBuffer(size_mb * MB, label="pages.z")
        values = {}

        fused = engine.submit_fused(["decompress", "filter"], payload,
                                    "pcie_gpu")
        env.run(until=fused.done)
        values["fused_gpu_s"] = fused.latency

        step1 = engine.get_dpk("decompress")(payload, "pcie_gpu")
        env.run(until=step1.done)
        step2 = engine.get_dpk("filter")(step1.data, "pcie_gpu")
        env.run(until=step2.done)
        values["unfused_gpu_s"] = step1.latency + step2.latency

        step1 = engine.get_dpk("decompress")(payload, "dpu_cpu")
        env.run(until=step1.done)
        step2 = engine.get_dpk("filter")(step1.data, "dpu_cpu")
        env.run(until=step2.done)
        values["dpu_cpu_s"] = step1.latency + step2.latency

        sweep.add(size_mb, **values)
    return sweep


# ---------------------------------------------------------------- A5


def ablation_partial_offload(
    read_fractions: Sequence[float] = (1.0, 0.9, 0.7, 0.5),
    rate_kreq: int = 200,
    duration_s: float = 0.01,
) -> Sweep:
    """A5: DDS under a growing share of non-offloadable requests.

    As the log-replay share rises, the offload fraction falls, host
    cores climb, and the DPU's share of the work shrinks — the
    quantitative version of Section 7's partial-offloading argument.
    """
    from .experiments_system import _s9_point

    sweep = Sweep("read_fraction")
    for read_fraction in read_fractions:
        dds = _s9_point(rate_kreq * 1000.0, duration_s, "pageserver",
                        read_fraction, 8, use_dds=True)
        baseline = _s9_point(rate_kreq * 1000.0, duration_s,
                             "pageserver", read_fraction, 8,
                             use_dds=False)
        sweep.add(
            read_fraction,
            offload_fraction=dds["offload_fraction"],
            dds_host_cores=dds["host_cores"],
            dds_dpu_cores=dds["dpu_cores"],
            baseline_host_cores=baseline["host_cores"],
            cores_saved=baseline["host_cores"] - dds["host_cores"],
        )
    return sweep


# -- structured runners for the CLI / artifact ------------------------------


def a1_parts() -> Dict[str, Dict[str, Dict[str, float]]]:
    """A1: scheduling disciplines."""
    return {"scheduling": ablation_scheduling()}


def a2_parts() -> Dict[str, Dict[str, Dict[str, float]]]:
    """A2: DPU portability."""
    return {"portability": ablation_portability()}


def a3_parts() -> Dict[str, Sweep]:
    """A3: cache placement."""
    return {"caching": ablation_caching()}


def a4_parts() -> Dict[str, Dict[str, float]]:
    """A4: fast persistence."""
    return {"persistence": ablation_persistence()}


def a5_parts() -> Dict[str, Sweep]:
    """A5: partial offloading."""
    return {"partial_offload": ablation_partial_offload(
        duration_s=0.008)}


def a6_parts() -> Dict[str, Sweep]:
    """A6: kernel fusion on PCIe peers."""
    return {"fusion": ablation_fusion()}
