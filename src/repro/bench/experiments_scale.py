"""SC: multi-node scale-out — goodput, host cores, and TCO vs N.

The Figure-9 argument extended to a cluster: if one DPU-equipped node
saves host cores at a fixed request rate, N of them serving sharded
tenants should save N× the cores — *provided* the sharding layer
doesn't reintroduce host work.  The cluster router forwards
misdirected requests DPU-side, so the claim to verify is that
per-node host cores stay flat while goodput scales.

Parts:

* ``goodput`` — weak-scaling sweep over node count (1/2/4/8) at a
  fixed per-node offered rate; reports goodput, speedup vs one node,
  total/per-node host cores, and the DPU-routed fraction.
* ``tco`` — dollars/hour of an N-node DDS cluster vs an N-node
  host-served baseline at the same offered load, extrapolated to
  line rate exactly like S9.
* ``sharding`` — pure-placement properties of the consistent-hash
  map (balance, minimal movement, determinism); no simulation.
* ``rebalance`` — a 4-node cluster with ``node1``'s Arm cluster
  crashed mid-run: fault-free vs unprotected vs rebalancing, the
  cluster-level analogue of the AV experiment.

Everything is seeded and hashed with crc32 (via
:func:`repro.cluster.stable_hash`), so ``--jobs N`` runs stay
byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..cluster import (Cluster, ClusterClient, Rebalancer,
                       ShardMap, encode_shard_read,
                       encode_shard_write, stable_hash)
from ..faults import FaultInjector, FaultPlan
from ..sim import Environment
from ..sim.fluid import HybridPlan
from ..units import PAGE_SIZE
from ..workloads.arrivals import open_loop
from .experiments_system import LINE_RATE_MSGS_PER_S, _s9_point
from .harness import CoreMeter, Sweep
from .tco import storage_server_cost

__all__ = ["scale_parts", "scale_goodput_and_tco",
           "sharding_properties", "rebalance_scenarios"]

#: weak-scaling load: each node is offered this many requests/s
RATE_PER_NODE = 120_000.0
DURATION_S = 5e-3
DRAIN_S = 3e-3
READ_FRACTION = 0.9
#: fraction of requests sent to the client's "home" node instead of
#: the shard owner (a routing cache lagging the shard map)
STALE_FRACTION = 0.15

#: rack-scale sweep: 64 and 128 nodes are unaffordable event-by-event
#: inside the CI perf gate (128 x 25K ops/s x 5 ms is ~16K request
#: round trips), so the bulk of each point's steady window is solved
#: flow-level by the hybrid fluid mode (:mod:`repro.sim.fluid`) and
#: only the lead-in and tail run event-level.  Per-node offered rate
#: is lower than the small sweep's — the rack points compare against
#: each other (cores/node flat, goodput/node linear), not against the
#: 1..8 sweep.
RACK_NODE_COUNTS = (8, 64, 128)
RACK_RATE_PER_NODE = 25_000.0
RACK_DURATION_S = 5e-3
RACK_FLUID_T0_S = 0.8e-3
RACK_FLUID_T1_S = 4.6e-3
RACK_SEED = 47


def _stream(seed: int, client_index: int, count: int,
            n_shards: int, shard_pages: int) -> List[Tuple]:
    """Pre-generate one client's deterministic request stream."""
    stream = []
    for k in range(count):
        shard = stable_hash(f"sh:{seed}:{client_index}:{k}") % n_shards
        page = stable_hash(f"of:{seed}:{client_index}:{k}") % shard_pages
        offset = page * PAGE_SIZE
        write = (stable_hash(f"rw:{seed}:{client_index}:{k}") % 10_000
                 >= READ_FRACTION * 10_000)
        message = (encode_shard_write(shard, offset) if write
                   else encode_shard_read(shard, offset))
        stream.append((message, shard))
    return stream


def _scale_point(n_nodes: int, rate_per_node: float,
                 duration_s: float, seed: int) -> Dict[str, float]:
    """One weak-scaling point: N nodes, N shard-aware clients."""
    env = Environment()
    cluster = Cluster(env, n_nodes)
    clients = [
        ClusterClient(cluster, f"client{i}", home=f"node{i}",
                      stale_fraction=STALE_FRACTION if n_nodes > 1
                      else 0.0)
        for i in range(n_nodes)
    ]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    count = int(rate_per_node * duration_s)
    shard_pages = cluster.shard_bytes // PAGE_SIZE
    streams = [
        _stream(seed, i, count, cluster.shardmap.n_shards,
                shard_pages)
        for i in range(n_nodes)
    ]
    meters = [CoreMeter(node.server.host_cpu)
              for node in cluster.nodes]
    dpu_meters = [CoreMeter(node.server.dpu.cpu)
                  for node in cluster.nodes]
    for meter in meters + dpu_meters:
        meter.start()

    def handler_for(index):
        client, stream = clients[index], streams[index]

        def handler(k):
            message, shard = stream[k % len(stream)]
            client.submit(message, shard, tag=k)

        return handler

    start = env.now
    for i in range(n_nodes):
        open_loop(env, rate_per_node, handler_for(i), duration_s,
                  name=f"load{i}")
    env.run(until=start + duration_s)
    # Cores are measured over the load window only (S9 convention);
    # the drain below is just for in-flight requests to land.
    total_host_cores = sum(meter.cores() for meter in meters)
    total_dpu_cores = sum(meter.cores() for meter in dpu_meters)
    env.run(until=start + duration_s + DRAIN_S)
    ok = sum(client.outcomes()["ok"] for client in clients)
    snapshot = cluster.metrics_snapshot()
    local = sum(s["shard_local"] for s in snapshot.values())
    routed = sum(s["shard_routed"] for s in snapshot.values())
    served = local + routed
    return {
        "goodput_ops_per_s": ok / duration_s,
        "total_host_cores": total_host_cores,
        "total_dpu_cores": total_dpu_cores,
        "host_cores_per_node": total_host_cores / n_nodes,
        "routed_fraction": routed / served if served else 0.0,
        "ok": float(ok),
    }


def scale_goodput_and_tco(
        node_counts: Tuple[int, ...] = (1, 2, 4, 8),
        rate_per_node: float = RATE_PER_NODE,
        duration_s: float = DURATION_S,
        seed: int = 31) -> Tuple[Sweep, Sweep]:
    """The weak-scaling sweep and its TCO extension, in one pass."""
    goodput = Sweep("nodes")
    tco = Sweep("nodes")
    # The conventional fleet this replaces: N host-served nodes at
    # the same per-node rate (single-node measurement, scaled).
    baseline = _s9_point(rate_per_node, duration_s, "kv",
                         READ_FRACTION, n_connections=4,
                         use_dds=False)
    line_scale = LINE_RATE_MSGS_PER_S / rate_per_node
    baseline_node_dollars = storage_server_cost(
        baseline["host_cores"] * line_scale, uses_dpu=False)
    reference = None
    for n_nodes in node_counts:
        point = _scale_point(n_nodes, rate_per_node, duration_s,
                             seed)
        if reference is None:
            reference = point["goodput_ops_per_s"]
        goodput.add(
            n_nodes,
            goodput_ops_per_s=point["goodput_ops_per_s"],
            speedup=point["goodput_ops_per_s"] / reference,
            total_host_cores=point["total_host_cores"],
            total_dpu_cores=point["total_dpu_cores"],
            host_cores_per_node=point["host_cores_per_node"],
            routed_fraction=point["routed_fraction"],
        )
        dds_node_dollars = storage_server_cost(
            point["host_cores_per_node"] * line_scale,
            uses_dpu=True)
        tco.add(
            n_nodes,
            dds_cluster_dollars_hr=n_nodes * dds_node_dollars,
            baseline_cluster_dollars_hr=(n_nodes
                                         * baseline_node_dollars),
            savings_ratio=(baseline_node_dollars
                           / dds_node_dollars),
        )
    return goodput, tco


def _rack_point(n_nodes: int, seed: int = RACK_SEED) -> Dict[str, float]:
    """One hybrid-assisted rack point: N nodes, shared client fleet.

    Eight clients (sixteen at 128 nodes) spread the aggregate load so
    no single client stack saturates; the steady mid-window is
    fluid-solved, so goodput is measured over the event-level spans
    only and core meters integrate the flow-level credit.
    """
    env = Environment()
    cluster = Cluster(env, n_nodes)
    n_clients = max(8, n_nodes // 8)
    rate_per_client = RACK_RATE_PER_NODE * n_nodes / n_clients
    clients = [
        ClusterClient(cluster, f"client{i}", home=f"node{i % n_nodes}",
                      stale_fraction=STALE_FRACTION)
        for i in range(n_clients)
    ]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    count = int(rate_per_client * RACK_DURATION_S)
    shard_pages = cluster.shard_bytes // PAGE_SIZE
    streams = [
        _stream(seed, i, count, cluster.shardmap.n_shards,
                shard_pages)
        for i in range(n_clients)
    ]
    meters = [CoreMeter(node.server.host_cpu)
              for node in cluster.nodes]
    dpu_meters = [CoreMeter(node.server.dpu.cpu)
                  for node in cluster.nodes]
    for meter in meters + dpu_meters:
        meter.start()

    def handler_for(index):
        client, stream = clients[index], streams[index]

        def handler(k):
            message, shard = stream[k % len(stream)]
            client.submit(message, shard, tag=k)

        return handler

    start = env.now
    populations = [
        open_loop(env, rate_per_client, handler_for(i),
                  RACK_DURATION_S, name=f"rack{i}")
        for i in range(n_clients)
    ]
    plan = HybridPlan(env, name=f"rack{n_nodes}")
    plan.population(*populations)
    for node in cluster.nodes:
        plan.resource(node.server.host_cpu.core_pool,
                      node.server.dpu.cpu.core_pool)
    plan.window(start + RACK_FLUID_T0_S, start + RACK_FLUID_T1_S)
    env.run(until=start + RACK_DURATION_S)
    total_host_cores = sum(meter.cores() for meter in meters)
    total_dpu_cores = sum(meter.cores() for meter in dpu_meters)
    env.run(until=start + RACK_DURATION_S + DRAIN_S)
    ok = sum(client.outcomes()["ok"] for client in clients)
    # goodput over the event-level spans only: the fluid window's
    # arrivals never fired, so they belong in neither numerator nor
    # denominator
    event_span = RACK_DURATION_S - (RACK_FLUID_T1_S - RACK_FLUID_T0_S)
    snapshot = cluster.metrics_snapshot()
    local = sum(s["shard_local"] for s in snapshot.values())
    routed = sum(s["shard_routed"] for s in snapshot.values())
    served = local + routed
    return {
        "nodes": float(n_nodes),
        "clients": float(n_clients),
        "offered_ops_per_s": RACK_RATE_PER_NODE * n_nodes,
        "goodput_ops_per_s": ok / event_span,
        "goodput_per_node": ok / event_span / n_nodes,
        "total_host_cores": total_host_cores,
        "total_dpu_cores": total_dpu_cores,
        "host_cores_per_node": total_host_cores / n_nodes,
        "dpu_cores_per_node": total_dpu_cores / n_nodes,
        "routed_fraction": routed / served if served else 0.0,
        "ok": float(ok),
        "fluid_windows": float(plan.windows_solved),
        "fluid_skipped": float(plan.skipped_arrivals),
        "fluid_served_credit": float(plan.credited_served),
    }


def rack_sweep(node_counts: Tuple[int, ...] = RACK_NODE_COUNTS
               ) -> Dict[str, Dict[str, float]]:
    """The 64/128-node extension plus its scaling summary."""
    points = {str(n): _rack_point(n) for n in node_counts}
    per_node = [points[str(n)]["goodput_per_node"]
                for n in node_counts]
    dpu_cores = [points[str(n)]["dpu_cores_per_node"]
                 for n in node_counts]
    points["scaling"] = {
        "points": float(len(node_counts)),
        "max_nodes": float(max(node_counts)),
        # weak-scaling flatness: smallest/largest per-node goodput
        # and largest/smallest per-node DPU cores across the sweep.
        # Host cores stay ~zero at every size — requests are served
        # DPU-side — so flatness is meaningful only for DPU cores.
        "goodput_linearity": (min(per_node) / max(per_node)
                              if max(per_node) else 0.0),
        "dpu_cores_flat_ratio": (max(dpu_cores) / min(dpu_cores)
                                 if min(dpu_cores) else 0.0),
        "host_cores_per_node_max": max(
            points[str(n)]["host_cores_per_node"]
            for n in node_counts),
        "fluid_windows": sum(points[str(n)]["fluid_windows"]
                             for n in node_counts),
        "fluid_skipped": sum(points[str(n)]["fluid_skipped"]
                             for n in node_counts),
    }
    return points


def sharding_properties(n_nodes: int = 8, n_shards: int = 64,
                        replicas: int = 64) -> Dict[str, float]:
    """Placement-only properties of the consistent-hash shard map."""
    names = [f"node{i}" for i in range(n_nodes)]
    shardmap = ShardMap(n_shards, names, replicas)
    counts = [len(shards)
              for shards in shardmap.assignment().values()]
    mean = n_shards / n_nodes
    plan = shardmap.plan_without("node3")
    rebuilt = ShardMap(n_shards, names, replicas)
    deterministic = all(
        shardmap.owner_of_shard(s) == rebuilt.owner_of_shard(s)
        for s in range(n_shards))
    # Minimal movement: removal must relocate exactly the shards the
    # removed node owned, nowhere else.
    survivor_map = ShardMap(n_shards,
                            [n for n in names if n != "node3"],
                            replicas)
    unmoved_stable = all(
        survivor_map.owner_of_shard(s) == shardmap.owner_of_shard(s)
        for s in range(n_shards) if s not in plan)
    return {
        "n_nodes": float(n_nodes),
        "n_shards": float(n_shards),
        "balance_factor": max(counts) / mean,
        "max_shards_per_node": float(max(counts)),
        "min_shards_per_node": float(min(counts)),
        "moved_fraction": len(plan) / n_shards,
        "expected_moved_fraction": 1.0 / n_nodes,
        "deterministic": float(deterministic),
        "minimal_movement": float(unmoved_stable),
    }


def _rebalance_scenario(mode: str, seed: int = 11,
                        n_nodes: int = 4,
                        rate_per_node: float = 80_000.0,
                        duration_s: float = 12e-3,
                        fault_start_s: float = 4e-3,
                        telemetry=None) -> Dict[str, float]:
    """One cluster run: ``fault_free``, ``norebalance``, ``rebalance``."""
    env = Environment()
    injector = None
    if mode != "fault_free":
        plan = FaultPlan(seed=seed).cpu_crash(
            fault_start_s, 10 * duration_s,
            site="cpu.node1.dpu.cpu")
        injector = FaultInjector(env, plan)
    cluster = Cluster(env, n_nodes, injector=injector,
                      telemetry=telemetry)
    rebalancer = (Rebalancer(cluster) if mode == "rebalance"
                  else None)
    clients = [
        ClusterClient(cluster, f"client{i}", home=f"node{i}",
                      stale_fraction=0.1)
        for i in range(n_nodes)
    ]

    def setup():
        for client in clients:
            yield from client.connect_all()

    env.run(until=env.process(setup()))
    count = int(rate_per_node * duration_s)
    shard_pages = cluster.shard_bytes // PAGE_SIZE
    streams = [
        _stream(seed, i, count, cluster.shardmap.n_shards,
                shard_pages)
        for i in range(n_nodes)
    ]

    def handler_for(index):
        client, stream = clients[index], streams[index]

        def handler(k):
            message, shard = stream[k % len(stream)]
            client.submit(message, shard, tag=k)

        return handler

    start = env.now
    for i in range(n_nodes):
        open_loop(env, rate_per_node, handler_for(i), duration_s,
                  name=f"load{i}")
    env.run(until=start + duration_s + 4e-3)
    ok = errors = pending = 0
    for client in clients:
        outcome = client.outcomes()
        ok += outcome["ok"]
        errors += outcome["errors"]
        pending += outcome["pending"]
    total = ok + errors + pending
    node1 = cluster.node("node1")
    recovery_s = 0.0
    if rebalancer is not None and rebalancer.cutover_times:
        recovery_s = (max(rebalancer.cutover_times.values())
                      - fault_start_s)
    return {
        "ok": float(ok),
        "errors": float(errors),
        "pending": float(pending),
        "ok_fraction": ok / total if total else 0.0,
        "goodput_ops_per_s": ok / duration_s,
        "breaker_trips": node1.breaker.trips.value,
        "migrated_shards": (rebalancer.migrated_shards.value
                            if rebalancer else 0.0),
        "migrated_bytes": (rebalancer.migrated_bytes.value
                           if rebalancer else 0.0),
        "node1_retired": float(node1.retired),
        "recovery_s": recovery_s,
    }


def rebalance_scenarios(telemetry=None) -> Dict[str, Dict[str, float]]:
    """The DPU-crash triptych: fault-free, unprotected, rebalanced.

    ``telemetry`` (a :class:`~repro.obs.plane.ClusterTelemetry`) is
    threaded into the ``rebalance`` scenario only — one plane observes
    exactly one cluster, and that run is the interesting one: it
    carries forwarded, failed-over, and migration traces.
    """
    return {
        "fault_free": _rebalance_scenario("fault_free"),
        "norebalance": _rebalance_scenario("norebalance"),
        "rebalance": _rebalance_scenario("rebalance",
                                         telemetry=telemetry),
    }


def scale_parts(telemetry=None) -> Dict[str, object]:
    """SC: the full scale-out experiment for the artifact."""
    goodput, tco = scale_goodput_and_tco()
    return {
        "goodput": goodput,
        "tco": tco,
        "sharding": sharding_properties(),
        "rebalance": rebalance_scenarios(telemetry=telemetry),
        "rack": rack_sweep(),
    }
