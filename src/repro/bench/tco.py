"""Server-cost accounting: turning cores saved into dollars.

The paper's motivation is *performance and cost*: "moving data at a
higher rate consumes significantly more CPU resources", and DPUs
promise to cut that bill because energy-efficient Arm cores plus
ASICs are far cheaper per unit of data-path work than host cores.

This module prices the simulator's "cores consumed" outputs with a
transparent amortized-hardware model (public list-price ballparks,
overridable), so benchmarks can report the cost side of the S9 claim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostAssumptions", "DEFAULT_COST_ASSUMPTIONS",
           "break_even_host_cores", "storage_server_cost"]

_HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class CostAssumptions:
    """Amortized hardware + power prices.

    Defaults: a dual-socket EPYC server (~$20 K, 128 cores) and a
    BlueField-2-class DPU (~$2 K) amortized over 4 years, plus power
    at $0.10/kWh with typical per-core draw.  Deliberately coarse —
    the point is the *ratio* between host-core work and DPU work.
    """

    host_server_dollars: float = 20_000.0
    host_cores: int = 128
    dpu_dollars: float = 2_000.0
    amortization_years: float = 4.0
    power_dollars_per_kwh: float = 0.10
    host_watts_per_core: float = 3.5
    dpu_watts_total: float = 30.0

    def host_core_hour_dollars(self) -> float:
        """Amortized + power cost of one host core for one hour."""
        capital = (
            self.host_server_dollars
            / (self.host_cores * self.amortization_years
               * _HOURS_PER_YEAR)
        )
        power = (self.host_watts_per_core / 1000.0
                 * self.power_dollars_per_kwh)
        return capital + power

    def dpu_hour_dollars(self) -> float:
        """Amortized + power cost of one whole DPU for one hour."""
        capital = self.dpu_dollars / (self.amortization_years
                                      * _HOURS_PER_YEAR)
        power = (self.dpu_watts_total / 1000.0
                 * self.power_dollars_per_kwh)
        return capital + power


DEFAULT_COST_ASSUMPTIONS = CostAssumptions()


def break_even_host_cores(assumptions: CostAssumptions =
                          DEFAULT_COST_ASSUMPTIONS) -> float:
    """Host cores a DPU must displace to pay for itself.

    With the default assumptions this lands around a dozen cores —
    which is why the paper's S9 claim is phrased as "10s of CPU cores
    per storage server": that is the magnitude at which DPU economics
    turn decisively positive.
    """
    return (assumptions.dpu_hour_dollars()
            / assumptions.host_core_hour_dollars())


def storage_server_cost(host_cores_consumed: float,
                        uses_dpu: bool,
                        assumptions: CostAssumptions =
                        DEFAULT_COST_ASSUMPTIONS) -> float:
    """Dollars per hour of the data-path resources in use.

    Host cores are charged fractionally (they are fungible with other
    tenants' work); a DPU is charged whole when present (it is a
    dedicated board).
    """
    if host_cores_consumed < 0:
        raise ValueError("negative core count")
    cost = host_cores_consumed * assumptions.host_core_hour_dollars()
    if uses_dpu:
        cost += assumptions.dpu_hour_dollars()
    return cost
