"""Availability under injected faults: goodput and tails, recovery on/off.

The robustness experiment the fault layer exists for.  One open-loop
page-read workload (the DDS hot path: ``se.dpu_read``) runs three
times under identical arrival times:

* ``fault_free``       — no injector; the goodput/latency baseline;
* ``faults_norec``     — the :func:`~repro.faults.default_fault_plan`
  (SSD error + latency windows, a DPU Arm-core crash window, a
  slowdown window, a ring stall) with **no** recovery: every injected
  fault is a lost request;
* ``faults_recovery``  — the same plan behind the full recovery
  stack: a :class:`~repro.faults.RetryPolicy` with deterministic
  backoff, a :class:`~repro.faults.CircuitBreaker` that fails the
  DPU-direct path over to the host-served ring path while the Arm
  cores are down, and a deadline on the fallback wait.

A second part demonstrates the connection-establishment deadline:
a TCP client SYNs into a black-holed link and must give up with
:class:`~repro.errors.DeadlineExceededError` in bounded time instead
of backing off forever.

Everything is deterministic — fixed seeds, sim-time only — so two
runs produce byte-identical artifact parts.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import DpdpuRuntime
from ..core.requests import wait
from ..errors import (
    DeadlineExceededError,
    FaultInjectedError,
    ReproError,
    StorageError,
)
from ..faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    default_fault_plan,
    retrying,
)
from ..hardware import (
    BLUEFIELD2,
    CpuCluster,
    Nic,
    Wire,
    default_cost_model,
    make_server,
)
from ..netstack import TcpStack
from ..obs.trace import NULL_TRACER
from ..sim import Environment
from ..sim.stats import Counter
from ..units import GHZ, Gbps, MiB, PAGE_SIZE

__all__ = [
    "availability",
    "availability_tcp_blackhole",
    "availability_parts",
]

#: the recovery stack under test (module-level so tests can reuse it)
RECOVERY_POLICY = RetryPolicy(
    max_attempts=8,
    base_delay_s=50e-6,
    multiplier=2.0,
    max_delay_s=1e-3,
    jitter=0.2,
    retryable=(FaultInjectedError, StorageError),
)

#: deadline on one host-fallback read before the client gives up
FALLBACK_DEADLINE_S = 2e-3


def _percentile(values: List[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _run_scenario(inject: bool, recover: bool, seed: int,
                  n_ops: int, duration_s: float,
                  telemetry=None) -> Dict[str, float]:
    """One availability scenario; returns its flat metric row.

    ``telemetry`` (a :class:`~repro.obs.Telemetry`) opts this run into
    tracing: each op gets a root span, retry attempts get child spans,
    and the breaker joins the registry.  ``None`` keeps the stock
    zero-overhead path.
    """
    env = Environment()
    server = make_server(env, dpu_profile=BLUEFIELD2)
    injector = None
    if inject:
        injector = FaultInjector(
            env, default_fault_plan(seed=seed, duration_s=duration_s)
        )
    runtime = DpdpuRuntime(server, injector=injector,
                           telemetry=telemetry)
    tracer = (telemetry.tracer if telemetry is not None
              else NULL_TRACER)
    se = runtime.storage
    file_id = se.create("pages", size=64 * MiB)
    file_pages = 1024

    latencies: List[float] = []
    outcomes = Counter("ok")
    failures = Counter("failed")
    failovers = Counter("failovers")
    retries = Counter("retries")
    breaker = CircuitBreaker(
        env,
        window_s=1e-3,
        min_failures=4,
        rate_threshold=0.5,
        reset_timeout_s=0.5e-3,
        name="avail.breaker",
    )
    if telemetry is not None:
        telemetry.register_breaker(breaker)

    def dpu_path(offset: int):
        # The protected path: DPU-direct read, outcome fed to the
        # breaker so a crashed Arm cluster trips it quickly.
        if not breaker.allow():
            failovers.add(1)
            with tracer.span("avail.host_fallback",
                             category="storage"):
                request = se.read(file_id, offset, PAGE_SIZE)
                buffer = yield from wait(
                    request, timeout_s=FALLBACK_DEADLINE_S)
            return buffer
        try:
            buffer = yield from se.dpu_read(file_id, offset, PAGE_SIZE)
        except ReproError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return buffer

    def one_op(index: int):
        offset = (index % file_pages) * PAGE_SIZE
        started = env.now
        span = tracer.span("avail.op", category="client", op=index)
        try:
            if recover:
                yield from retrying(
                    env, RECOVERY_POLICY,
                    lambda: dpu_path(offset),
                    seed=index, retries=retries,
                    tracer=tracer,
                )
            else:
                yield from se.dpu_read(file_id, offset, PAGE_SIZE)
        except ReproError as exc:
            span.annotate(error=type(exc).__name__)
            span.finish()
            failures.add(1)
            return
        span.finish()
        outcomes.add(1)
        latencies.append(env.now - started)

    def driver():
        interval = duration_s / n_ops
        ops = []
        for index in range(n_ops):
            ops.append(env.process(one_op(index),
                                   name=f"avail-op-{index}"))
            yield env.timeout(interval)
        yield env.all_of(ops)

    env.run(until=env.process(driver()))

    ok = int(outcomes.value)
    failed = int(failures.value)
    row = {
        "ops": float(n_ops),
        "ok": float(ok),
        "failed": float(failed),
        "error_rate": failed / n_ops,
        "goodput_ops_per_s": ok / duration_s,
        "makespan_s": env.now,
        "mean_s": (sum(latencies) / len(latencies)) if latencies else 0.0,
        "p99_s": _percentile(latencies, 0.99),
        "retries": retries.value,
        "failovers": failovers.value,
        "breaker_trips": breaker.trips.value,
        "faults_injected": (injector.injected.value
                            if injector is not None else 0.0),
    }
    return row


def availability(seed: int = 7, n_ops: int = 400,
                 duration_s: float = 10e-3,
                 telemetry=None) -> Dict[str, Dict[str, float]]:
    """The three availability scenarios over one identical workload.

    ``telemetry`` rides the ``faults_recovery`` run only — the one
    whose retry loops and breaker failovers the trace exists to show.
    """
    return {
        "fault_free": _run_scenario(
            inject=False, recover=False, seed=seed,
            n_ops=n_ops, duration_s=duration_s),
        "faults_norec": _run_scenario(
            inject=True, recover=False, seed=seed,
            n_ops=n_ops, duration_s=duration_s),
        "faults_recovery": _run_scenario(
            inject=True, recover=True, seed=seed,
            n_ops=n_ops, duration_s=duration_s,
            telemetry=telemetry),
    }


def availability_tcp_blackhole(timeout_s: float = 5e-3,
                               seed: int = 3) -> Dict[str, float]:
    """Connection establishment against a black-holed peer.

    The healthy control connects in microseconds; with every frame on
    the wire dropped, ``connect(..., timeout_s=)`` must abandon the
    capped SYN backoff and raise
    :class:`~repro.errors.DeadlineExceededError` in bounded time.
    """

    def build():
        env = Environment()
        costs = default_cost_model().software
        nic_a = Nic(env, 100 * Gbps, name="a")
        nic_b = Nic(env, 100 * Gbps, name="b")
        wire = Wire(env, nic_a, nic_b)
        cpu = CpuCluster(env, 8, 3 * GHZ, name="client")
        stack_a = TcpStack(env, nic_a, nic_a.rx_host, cpu, costs, "a")
        stack_b = TcpStack(env, nic_b, nic_b.rx_host, cpu, costs, "b")
        stack_b.listen(5000)
        return env, wire, stack_a

    # -- control: healthy link, the handshake just works ----------------
    env, _, stack_a = build()
    control: Dict[str, float] = {}

    def healthy_client():
        started = env.now
        yield from stack_a.connect(5000, timeout_s=timeout_s)
        control["connect_s"] = env.now - started

    env.run(until=env.process(healthy_client()))

    # -- blackhole: a down window swallows every frame -------------------
    env, wire, stack_a = build()
    wire.injector = FaultInjector(
        env, FaultPlan(seed=seed).link_flap(0.0, 1.0)
    )
    result: Dict[str, float] = {}

    def blackholed_client():
        started = env.now
        try:
            yield from stack_a.connect(5000, timeout_s=timeout_s)
        except DeadlineExceededError:
            result["deadline_hit"] = 1.0
        else:
            result["deadline_hit"] = 0.0
        result["elapsed_s"] = env.now - started

    env.run(until=env.process(blackholed_client()))

    return {
        "timeout_s": timeout_s,
        "healthy_connect_s": control["connect_s"],
        "blackhole_elapsed_s": result["elapsed_s"],
        "deadline_hit": result["deadline_hit"],
    }


def availability_parts(telemetry=None) -> Dict[str, object]:
    """Artifact parts for the ``avail`` experiment."""
    scenarios = availability(telemetry=telemetry)
    fault_free = scenarios["fault_free"]
    norec = scenarios["faults_norec"]
    recovery = scenarios["faults_recovery"]
    baseline_goodput = fault_free["goodput_ops_per_s"] or 1.0
    summary = {
        "recovery_goodput_fraction":
            recovery["goodput_ops_per_s"] / baseline_goodput,
        "norec_goodput_fraction":
            norec["goodput_ops_per_s"] / baseline_goodput,
        "recovery_error_rate": recovery["error_rate"],
        "norec_error_rate": norec["error_rate"],
        "fault_free_p99_s": fault_free["p99_s"],
        "recovery_p99_s": recovery["p99_s"],
        "recovery_retries": recovery["retries"],
        "recovery_failovers": recovery["failovers"],
        "breaker_trips": recovery["breaker_trips"],
    }
    return {
        "scenarios": scenarios,
        "summary": summary,
        "tcp_blackhole": availability_tcp_blackhole(),
    }
