"""Experiments F6–F8 and S9: the DPDPU system-level results.

F6 — the Figure 6 sproc (read pages → compress → send), under
specified vs scheduled execution and across DPU profiles.
F7 — Figure 7's RDMA offload: host issue cost native vs NE.
F8 — Figure 8's round-trip saving: remote read latency, host path vs
DDS path.
S9 — the Section 9 DDS claim: host CPU cores saved per storage
server under FASTER-like (KV) and page-server request mixes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..baselines import HostServedStorage, make_host_rdma_node
from ..baselines.host_tcp import make_kernel_tcp
from ..buffers import SynthBuffer
from ..core import DdsClient, DpdpuRuntime, encode_log_replay, encode_read
from ..hardware import (
    BLUEFIELD2,
    GENERIC_DPU,
    DpuProfile,
    connect,
    make_server,
)
from ..sim import Environment
from ..units import Gbps, MiB, PAGE_SIZE
from ..workloads import PageServerWorkload, YcsbWorkload, KvStoreIndex, open_loop
from .harness import CoreMeter, Sweep

__all__ = [
    "fig6_sproc",
    "fig7_rdma",
    "fig8_dds_latency",
    "s9_dds_cores",
    "LINE_RATE_MSGS_PER_S",
    "fig6_parts",
    "fig7_parts",
    "fig8_parts",
    "s9_parts",
]

#: 8 KiB messages at 100 Gbps — the "line rate" used to extrapolate
#: the S9 cores-saved figure the way the paper states it.
LINE_RATE_MSGS_PER_S = 100 * Gbps / ((PAGE_SIZE + 66) * 8)


# ---------------------------------------------------------------- F6


def fig6_sproc(profile: DpuProfile = BLUEFIELD2,
               mode: str = "specified",
               n_invocations: int = 20,
               pages_per_request: int = 8,
               telemetry=None) -> Dict[str, float]:
    """Run the paper's Figure 6 sproc end to end.

    The sproc reads a set of pages through the SE, compresses them
    with ``dpk_compress`` (specified: ASIC with CPU fallback;
    scheduled: engine-chosen), and sends the compressed pages to a
    remote client through the NE — returning throughput, latency, and
    where compression actually ran.  Pass a fresh
    :class:`~repro.obs.Telemetry` to trace the run.
    """
    if mode not in ("specified", "scheduled"):
        raise ValueError(f"unknown mode {mode!r}")
    env = Environment()
    server = make_server(env, name="dpu", dpu_profile=profile)
    client = make_server(env, name="client", dpu_profile=None)
    connect(server, client)
    runtime = DpdpuRuntime(server, telemetry=telemetry)
    file_id = runtime.storage.create("pages", size=64 * MiB)

    client_tcp = make_kernel_tcp(client, "client-tcp")
    listener = client_tcp.listen(7100)
    received = []

    def client_rx():
        connection = yield listener.accept()
        while True:
            message = yield connection.recv_message()
            received.append(message.size)

    env.process(client_rx())

    devices_used = []

    def read_compress_send_pages(ctx, request):
        """Figure 6, transcribed to this library's API."""
        dpk_compress = ctx.dpk("compress")
        page_read_list = []
        for page_index in request["pages"]:
            read_req = ctx.se.read(page_index["file_id"],
                                   page_index["addr"], PAGE_SIZE)
            page_read_list.append(read_req)
        page_comp_list = []
        for read_req in page_read_list:
            data = yield from ctx.wait(read_req)
            if mode == "specified":
                comp_req = dpk_compress(data, "dpu_asic")
                if comp_req is None:
                    comp_req = dpk_compress(data, "dpu_cpu")
            else:
                comp_req = dpk_compress(data)
            page_comp_list.append(comp_req)
        send_list = []
        for comp_req in page_comp_list:
            compressed = yield from ctx.wait(comp_req)
            devices_used.append(comp_req.device)
            yield from request["client"].send_message(compressed)
        return len(page_comp_list)

    runtime.compute.register_sproc("read_compress_send_pages",
                                   read_compress_send_pages)

    outcome: Dict[str, float] = {}

    def driver():
        connection = yield from runtime.network.tcp.connect(7100)
        started = env.now
        for batch in range(n_invocations):
            pages = [
                {"file_id": file_id,
                 "addr": ((batch * pages_per_request + i)
                          % ((64 * MiB) // PAGE_SIZE)) * PAGE_SIZE}
                for i in range(pages_per_request)
            ]
            invocation = runtime.compute.invoke(
                "read_compress_send_pages",
                {"pages": pages, "client": connection},
            )
            yield invocation.done
        elapsed = env.now - started
        total_pages = n_invocations * pages_per_request
        outcome["pages_per_s"] = total_pages / elapsed
        outcome["latency_per_invocation_s"] = elapsed / n_invocations

    env.run(until=env.process(driver()))
    env.run(until=env.now + 0.01)
    outcome["pages_received"] = float(len(received))
    outcome["asic_fraction"] = (
        devices_used.count("dpu_asic") / len(devices_used)
        if devices_used else 0.0
    )
    outcome["bytes_received"] = float(sum(received))
    return outcome


# ---------------------------------------------------------------- F7


def fig7_rdma(n_clients: int = 16, ops_per_client: int = 50,
              payload_bytes: int = 4096) -> Dict[str, float]:
    """Figure 7: RDMA issuing, native host vs NE-offloaded.

    Closed-loop clients issue one-sided WRITEs; reports host
    cycles/op, throughput, and mean op latency for both paths.
    """
    out: Dict[str, float] = {}

    # -- native host issuing ------------------------------------------------
    env = Environment()
    initiator = make_server(env, name="ini", dpu_profile=None)
    target = make_server(env, name="tgt", dpu_profile=None)
    connect(initiator, target)
    local = make_host_rdma_node(initiator, "ini-rdma")
    remote = make_host_rdma_node(target, "tgt-rdma")
    remote.register_region("pool", 256 * MiB)
    from ..netstack.rdma import connect_qp
    qps = [connect_qp(local, remote)[0] for _ in range(n_clients)]
    base_cycles = initiator.host_cpu.cycles_charged.value

    def native_client(qp, index):
        for i in range(ops_per_client):
            offset = ((index * ops_per_client + i) * payload_bytes) \
                % (128 * MiB)
            done = yield from qp.post_write(
                "pool", offset, SynthBuffer(payload_bytes)
            )
            yield done

    start = env.now
    procs = [env.process(native_client(qp, i))
             for i, qp in enumerate(qps)]
    env.run(until=env.all_of(procs))
    total_ops = n_clients * ops_per_client
    out["native_host_cycles_per_op"] = (
        (initiator.host_cpu.cycles_charged.value - base_cycles)
        / total_ops
    )
    out["native_ops_per_s"] = total_ops / (env.now - start)
    out["native_latency_s"] = (env.now - start) / ops_per_client

    # -- NE offloaded issuing -------------------------------------------------
    env = Environment()
    initiator = make_server(env, name="ini", dpu_profile=BLUEFIELD2)
    target = make_server(env, name="tgt", dpu_profile=None)
    connect(initiator, target)
    runtime = DpdpuRuntime(initiator)
    remote = make_host_rdma_node(target, "tgt-rdma")
    remote.register_region("pool", 256 * MiB)
    facades = [runtime.network.rdma_qp(remote) for _ in range(n_clients)]
    env.run(until=1e-6)
    base_cycles = initiator.host_cpu.cycles_charged.value

    def offloaded_client(qp, index):
        for i in range(ops_per_client):
            offset = ((index * ops_per_client + i) * payload_bytes) \
                % (128 * MiB)
            yield qp.write("pool", offset,
                           SynthBuffer(payload_bytes)).done

    start = env.now
    procs = [env.process(offloaded_client(qp, i))
             for i, qp in enumerate(facades)]
    env.run(until=env.all_of(procs))
    env.run(until=env.now + 1e-4)    # drain async host charges
    out["offloaded_host_cycles_per_op"] = (
        (initiator.host_cpu.cycles_charged.value - base_cycles)
        / total_ops
    )
    out["offloaded_ops_per_s"] = total_ops / (env.now - start)
    out["offloaded_latency_s"] = (env.now - start) / ops_per_client
    out["host_cycles_saved_factor"] = (
        out["native_host_cycles_per_op"]
        / max(out["offloaded_host_cycles_per_op"], 1e-9)
    )
    return out


# ---------------------------------------------------------------- F8


def fig8_dds_latency(n_reads: int = 200,
                     telemetry=None) -> Dict[str, float]:
    """Figure 8: remote 8 KiB read latency, host path vs DDS path.

    Pass a fresh :class:`~repro.obs.Telemetry` to trace the DDS path
    (the host-path baseline runs untraced either way).
    """
    out: Dict[str, float] = {}

    def run_one(use_dds: bool) -> Dict[str, float]:
        env = Environment()
        storage = make_server(env, name="storage",
                              dpu_profile=BLUEFIELD2)
        client_machine = make_server(env, name="client",
                                     dpu_profile=None)
        connect(storage, client_machine)
        if use_dds:
            runtime = DpdpuRuntime(storage, telemetry=telemetry)
            file_id = runtime.storage.create("db", size=256 * MiB)
            runtime.dds(port=9100)
        else:
            served = HostServedStorage(storage, port=9100)
            file_id = served.create_file("db", 256 * MiB)
        client_tcp = make_kernel_tcp(client_machine, "c-tcp")
        stats = {}

        def client_proc():
            connection = yield from client_tcp.connect(9100)
            dds_client = DdsClient(connection)
            for i in range(n_reads):
                yield from dds_client.read(
                    file_id,
                    (i % (256 * MiB // PAGE_SIZE)) * PAGE_SIZE,
                )
            stats["mean"] = dds_client.request_latency.mean
            stats["p99"] = dds_client.request_latency.p99

        env.run(until=env.process(client_proc()))
        return stats

    host = run_one(use_dds=False)
    dds = run_one(use_dds=True)
    out["host_path_mean_s"] = host["mean"]
    out["host_path_p99_s"] = host["p99"]
    out["dds_mean_s"] = dds["mean"]
    out["dds_p99_s"] = dds["p99"]
    out["latency_saving_fraction"] = 1 - dds["mean"] / host["mean"]
    return out


# ---------------------------------------------------------------- S9


def s9_dds_cores(
    rates_kreq: Sequence[int] = (100, 200, 300, 400),
    duration_s: float = 0.02,
    workload: str = "pageserver",
    read_fraction: float = 0.9,
    n_connections: int = 8,
) -> Sweep:
    """Section 9: host cores consumed with and without DDS.

    Sweeps request rate; series: ``baseline_host_cores``,
    ``dds_host_cores``, ``dds_dpu_cores``, ``cores_saved`` and the
    line-rate extrapolation ``cores_saved_at_line_rate``.
    """
    if workload not in ("pageserver", "kv"):
        raise ValueError(f"unknown workload {workload!r}")
    sweep = Sweep("kreq_per_s")
    for rate_kreq in rates_kreq:
        rate = rate_kreq * 1000.0
        baseline = _s9_point(rate, duration_s, workload, read_fraction,
                             n_connections, use_dds=False)
        dds = _s9_point(rate, duration_s, workload, read_fraction,
                        n_connections, use_dds=True)
        saved = baseline["host_cores"] - dds["host_cores"]
        # Cost side of the claim: price both servers at NIC line rate
        # (where the "10s of cores" live), scaling the measured
        # per-request core costs.
        from .tco import storage_server_cost
        scale = LINE_RATE_MSGS_PER_S / rate
        baseline_line_cost = storage_server_cost(
            baseline["host_cores"] * scale, uses_dpu=False
        )
        dds_line_cost = storage_server_cost(
            dds["host_cores"] * scale, uses_dpu=True
        )
        sweep.add(
            rate_kreq,
            baseline_host_cores=baseline["host_cores"],
            dds_host_cores=dds["host_cores"],
            dds_dpu_cores=dds["dpu_cores"],
            cores_saved=saved,
            cores_saved_at_line_rate=saved * scale,
            line_rate_baseline_dollars_hr=baseline_line_cost,
            line_rate_dds_dollars_hr=dds_line_cost,
        )
    return sweep


def _make_requests(workload: str, read_fraction: float, count: int,
                   file_id: int, seed: int = 13):
    """Pre-generate the encoded request stream for one S9 point."""
    if workload == "pageserver":
        generator = PageServerWorkload(
            database_pages=(256 * MiB) // PAGE_SIZE,
            read_fraction=read_fraction,
            replay_working_set_bytes=32 * MiB,
            seed=seed,
        )
        encoded = []
        for request in generator.requests(count):
            if request.kind == "get_page":
                encoded.append(encode_read(file_id, request.offset,
                                           request.size))
            else:
                encoded.append(encode_log_replay(
                    file_id, request.offset, request.size,
                    working_set=request.working_set,
                ))
        return encoded
    index = KvStoreIndex(n_keys=100_000)
    ycsb = YcsbWorkload(index, read_fraction=read_fraction, seed=seed)
    encoded = []
    from ..core.dds import encode_write
    for op in ycsb.ops(count):
        offset = op.offset % (192 * MiB)
        if op.kind == "get":
            encoded.append(encode_read(file_id, offset, op.size))
        else:
            encoded.append(encode_write(file_id, offset, op.size))
    return encoded


def _s9_point(rate: float, duration_s: float, workload: str,
              read_fraction: float, n_connections: int,
              use_dds: bool) -> Dict[str, float]:
    env = Environment()
    storage = make_server(env, name="storage", dpu_profile=BLUEFIELD2)
    client_machine = make_server(env, name="client", dpu_profile=None)
    connect(storage, client_machine)
    dds_server = None
    if use_dds:
        runtime = DpdpuRuntime(storage, se_ring_capacity=1 << 16)
        file_id = runtime.storage.create("db", size=256 * MiB)
        dds_server = runtime.dds(port=9200)
        dpu_cpu = storage.dpu.cpu
    else:
        served = HostServedStorage(storage, port=9200)
        file_id = served.create_file("db", 256 * MiB)
        dpu_cpu = None
    client_tcp = make_kernel_tcp(client_machine, "c-tcp")
    count = int(rate * duration_s)
    requests = _make_requests(workload, read_fraction, count, file_id)
    clients = []

    def setup():
        for _ in range(n_connections):
            connection = yield from client_tcp.connect(9200)
            clients.append(DdsClient(connection))

    env.run(until=env.process(setup()))
    host_meter = CoreMeter(storage.host_cpu)
    host_meter.start()
    dpu_meter = CoreMeter(dpu_cpu) if dpu_cpu else None
    if dpu_meter:
        dpu_meter.start()

    def handler(i):
        # Open loop: submit is asynchronous and nothing joins on the
        # request here, so no per-arrival process is needed.
        clients[i % n_connections].submit(requests[i % len(requests)])

    start = env.now
    open_loop(env, rate, handler, duration_s)
    env.run(until=start + duration_s)
    return {
        "host_cores": host_meter.cores(),
        "dpu_cores": dpu_meter.cores() if dpu_meter else 0.0,
        "offload_fraction": (dds_server.offload_fraction
                             if dds_server else 0.0),
    }


# -- structured runners for the CLI / artifact ------------------------------


def fig6_parts(telemetry=None) -> Dict[str, Dict[str, float]]:
    """F6: the sproc under each execution mode / profile.

    Tracing covers the first configuration only: one Telemetry
    adopts one runtime's instruments (duplicate-name protection).
    """
    return {"sproc": {
        "bf2/specified": fig6_sproc(BLUEFIELD2, "specified",
                                    telemetry=telemetry),
        "bf2/scheduled": fig6_sproc(BLUEFIELD2, "scheduled"),
        "generic/fallback": fig6_sproc(GENERIC_DPU, "specified"),
    }}


def fig7_parts() -> Dict[str, Dict[str, float]]:
    """F7: RDMA issuing, native host vs NE-offloaded."""
    return {"rdma": fig7_rdma()}


def fig8_parts(telemetry=None) -> Dict[str, Dict[str, float]]:
    """F8: remote-read latency, host path vs DDS path."""
    return {"dds_latency": fig8_dds_latency(telemetry=telemetry)}


def s9_parts() -> Dict[str, Sweep]:
    """S9: DDS cores saved under both request mixes."""
    return {
        "pageserver": s9_dds_cores(duration_s=0.01),
        "kv": s9_dds_cores(duration_s=0.01, workload="kv",
                           read_fraction=0.95),
    }
