"""Kernel microbenchmarks: how fast is the event loop itself?

Every other experiment measures *simulated* hardware; this one
measures the simulator.  Three microbenchmarks exercise the kernel's
fast paths directly, in isolation from any hardware model:

* **event throughput** — a process yielding back-to-back timeouts,
  the pattern every per-packet/per-page delay reduces to.  Exercises
  the inlined ``run()`` loop and the :class:`Timeout` freelist.
* **timeout churn** — arm-then-cancel at scale (TCP retransmit
  timers, watchdogs).  Exercises lazy-cancel tombstoning and dead
  entry recycling: cancelled timers must cost O(1) and must not
  perturb ``peek()``/``run(until=...)``.
* **interrupt storm** — repeated ``Process.interrupt`` against a
  sleeping process (preemption, fault injection).  Exercises the
  lazy-cancel path that replaced the O(n) ``callbacks.remove``.

The *rates* are real wall-clock measurements and therefore vary by
machine — the artifact records them as a perf trajectory, the
regression comparator treats the whole ``perf`` experiment as
warn-only, and the byte-identity check strips it (see
``repro.obs.artifact.strip_volatile``).  The *counts* are simulated
and deterministic; ``tests/sim/test_perf_smoke.py`` asserts them
exactly and puts generous floors under the rates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..obs.metrics import MetricsRegistry
from ..sim import Environment, EventPopulation, Interrupt

__all__ = [
    "event_throughput",
    "timeout_churn",
    "interrupt_storm",
    "kernel_counters",
    "scheduler_identity",
    "batch_identity",
    "perf_parts",
]


def event_throughput(n_events: int = 200_000) -> Dict[str, float]:
    """Drain ``n_events`` back-to-back timeouts through one process."""
    env = Environment()

    def spin():
        for _ in range(n_events):
            yield env.timeout(1e-6)

    env.process(spin())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "events": float(n_events),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "events_per_s": n_events / elapsed if elapsed > 0 else 0.0,
    }


def timeout_churn(n_timeouts: int = 200_000) -> Dict[str, float]:
    """Arm and immediately cancel timers at scale, then drain.

    Ends with a single live sentinel timer: if the tombstoned entries
    leaked into the clock, the final ``env.now`` would drift off the
    sentinel's deadline.
    """
    env = Environment()

    def churn():
        for _ in range(n_timeouts):
            timer = env.timeout(10.0)  # would fire far in the future
            timer.cancel()
            if env.peek() > 1.0:
                # Nothing live pending: the dead timers are invisible.
                yield env.timeout(1e-6)

    env.process(churn())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "timeouts": float(n_timeouts),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "cancels_per_s": n_timeouts / elapsed if elapsed > 0 else 0.0,
    }


def interrupt_storm(n_interrupts: int = 50_000) -> Dict[str, float]:
    """Interrupt a sleeping process ``n_interrupts`` times."""
    env = Environment()
    caught = [0]

    def sleeper():
        while True:
            try:
                yield env.timeout(1000.0)  # interrupted long before
                return
            except Interrupt:
                caught[0] += 1
                if caught[0] >= n_interrupts:
                    return

    def storm(target):
        for _ in range(n_interrupts):
            yield env.timeout(1e-6)
            target.interrupt(cause="storm")

    target = env.process(sleeper())
    env.process(storm(target))
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "interrupts": float(n_interrupts),
        "delivered": float(caught[0]),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "interrupts_per_s": n_interrupts / elapsed if elapsed > 0 else 0.0,
    }


def _spin_env(n_events: int, **env_kwargs) -> Environment:
    """Drain ``n_events`` back-to-back timeouts; return the environment."""
    env = Environment(**env_kwargs)

    def spin():
        for _ in range(n_events):
            yield env.timeout(1e-6)

    env.process(spin())
    env.run()
    return env


def kernel_counters(n_events: int = 50_000) -> Dict[str, float]:
    """Kernel freelist/scheduler telemetry through the metrics registry.

    Runs the timeout-drain workload twice — once with the default
    ``timeout_pool_cap`` and once with pooling disabled (cap 0) — and
    adopts the environment's counters into a
    :class:`~repro.obs.metrics.MetricsRegistry` so the ``perf``
    artifact reads them the same way the telemetry plane would.  The
    counts are simulated-deterministic; only the sibling rate parts
    are wall-clock volatile.
    """
    registry = MetricsRegistry("kernel")
    hits = registry.counter("sim.timeout_pool.hits")
    misses = registry.counter("sim.timeout_pool.misses")
    promotions = registry.counter("sim.scheduler.calendar_promotions")

    pooled = _spin_env(n_events)
    hits.add(pooled.pool_hits)
    misses.add(pooled.pool_misses)
    promotions.add(pooled.calendar_promotions)

    unpooled = _spin_env(n_events, timeout_pool_cap=0)

    total = pooled.pool_hits + pooled.pool_misses
    snapshot = registry.snapshot(pooled.now)
    snapshot.update({
        "events": float(n_events),
        "pool_hit_fraction": pooled.pool_hits / total if total else 0.0,
        "pool_cap0_hits": float(unpooled.pool_hits),
        "pool_cap0_misses": float(unpooled.pool_misses),
    })
    return snapshot


def scheduler_identity(n_events: int = 40_000) -> Dict[str, float]:
    """Heap vs calendar tier: identical fire order on a mixed workload.

    Four periodic processes with co-prime periods (plus an
    arm-and-cancel churner leaving tombstones) run once with the
    scheduler pinned to the heap tier and once pinned to the calendar
    tier.  The complete ``(time, process, step)`` fire log must match
    entry for entry — the calendar is a throughput optimization, never
    a behavioural change.
    """
    bursts = ((0.0, 1.0e-6), (5.0e-4, 3.1e-6),
              (1.0e-3, 7.0e-7), (2.0e-3, 1.3e-5))
    per_proc = n_events // (len(bursts) + 1)

    def run(scheduler: str) -> Tuple[List, Environment]:
        env = Environment(scheduler=scheduler)
        log: List = []

        def burst(k, delay, period):
            yield env.timeout(delay)
            for i in range(per_proc):
                log.append((env.now, k, i))
                yield env.timeout(period)

        def churn():
            for _ in range(per_proc):
                env.timeout(5.0).cancel()
                yield env.timeout(2.0e-6)

        for k, (delay, period) in enumerate(bursts):
            env.process(burst(k, delay, period))
        env.process(churn())
        env.run()
        return log, env

    heap_log, heap_env = run("heap")
    cal_log, cal_env = run("calendar")
    return {
        "events": float(len(heap_log)),
        "order_identical": 1.0 if heap_log == cal_log else 0.0,
        "calendar_promotions": float(cal_env.calendar_promotions),
        "heap_promotions": float(heap_env.calendar_promotions),
    }


def batch_identity(n_arrivals: int = 30_000) -> Dict[str, float]:
    """EventPopulation vs per-arrival driver: identical handler log.

    The same deterministic arrival schedule (with same-instant runs,
    so the vectorized batch path actually batches) is driven once
    through :class:`~repro.sim.EventPopulation` and once through the
    one-timeout-per-arrival generator it replaced.  Fire logs must be
    equal; the wall-clock ratio is recorded as the (volatile)
    ``batch_speedup`` trajectory metric.
    """
    times: List[float] = []
    t = 0.0
    for i in range(n_arrivals):
        t += (i % 7) * 1.0e-6  # zero steps -> same-instant batches
        times.append(t)

    def run(batched: bool) -> Tuple[List, float]:
        env = Environment()
        log: List = []

        def handler(k):
            log.append((env.now, k))
            return None

        started = time.perf_counter()
        if batched:
            EventPopulation(env, times, handler)
            env.run()
        else:
            def driver():
                for k, at in enumerate(times):
                    delay = at - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    handler(k)

            env.process(driver())
            env.run()
        return log, time.perf_counter() - started

    batch_log, batch_s = run(batched=True)
    scalar_log, scalar_s = run(batched=False)
    return {
        "arrivals": float(n_arrivals),
        "fire_log_identical": 1.0 if batch_log == scalar_log else 0.0,
        "batch_elapsed_s": batch_s,
        "scalar_elapsed_s": scalar_s,
        "batch_speedup": scalar_s / batch_s if batch_s > 0 else 0.0,
    }


def perf_parts() -> Dict[str, Dict[str, float]]:
    """The ``perf`` bench experiment: one table per microbenchmark."""
    return {
        "event_throughput": event_throughput(),
        "timeout_churn": timeout_churn(),
        "interrupt_storm": interrupt_storm(),
        "kernel_counters": kernel_counters(),
        "scheduler_identity": scheduler_identity(),
        "batch_identity": batch_identity(),
    }
