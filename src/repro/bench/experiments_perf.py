"""Kernel microbenchmarks: how fast is the event loop itself?

Every other experiment measures *simulated* hardware; this one
measures the simulator.  Three microbenchmarks exercise the kernel's
fast paths directly, in isolation from any hardware model:

* **event throughput** — a process yielding back-to-back timeouts,
  the pattern every per-packet/per-page delay reduces to.  Exercises
  the inlined ``run()`` loop and the :class:`Timeout` freelist.
* **timeout churn** — arm-then-cancel at scale (TCP retransmit
  timers, watchdogs).  Exercises lazy-cancel tombstoning and dead
  entry recycling: cancelled timers must cost O(1) and must not
  perturb ``peek()``/``run(until=...)``.
* **interrupt storm** — repeated ``Process.interrupt`` against a
  sleeping process (preemption, fault injection).  Exercises the
  lazy-cancel path that replaced the O(n) ``callbacks.remove``.

The *rates* are real wall-clock measurements and therefore vary by
machine — the artifact records them as a perf trajectory, the
regression comparator treats the whole ``perf`` experiment as
warn-only, and the byte-identity check strips it (see
``repro.obs.artifact.strip_volatile``).  The *counts* are simulated
and deterministic; ``tests/sim/test_perf_smoke.py`` asserts them
exactly and puts generous floors under the rates.
"""

from __future__ import annotations

import time
from typing import Dict

from ..sim import Environment, Interrupt

__all__ = [
    "event_throughput",
    "timeout_churn",
    "interrupt_storm",
    "perf_parts",
]


def event_throughput(n_events: int = 200_000) -> Dict[str, float]:
    """Drain ``n_events`` back-to-back timeouts through one process."""
    env = Environment()

    def spin():
        for _ in range(n_events):
            yield env.timeout(1e-6)

    env.process(spin())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "events": float(n_events),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "events_per_s": n_events / elapsed if elapsed > 0 else 0.0,
    }


def timeout_churn(n_timeouts: int = 200_000) -> Dict[str, float]:
    """Arm and immediately cancel timers at scale, then drain.

    Ends with a single live sentinel timer: if the tombstoned entries
    leaked into the clock, the final ``env.now`` would drift off the
    sentinel's deadline.
    """
    env = Environment()

    def churn():
        for _ in range(n_timeouts):
            timer = env.timeout(10.0)  # would fire far in the future
            timer.cancel()
            if env.peek() > 1.0:
                # Nothing live pending: the dead timers are invisible.
                yield env.timeout(1e-6)

    env.process(churn())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "timeouts": float(n_timeouts),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "cancels_per_s": n_timeouts / elapsed if elapsed > 0 else 0.0,
    }


def interrupt_storm(n_interrupts: int = 50_000) -> Dict[str, float]:
    """Interrupt a sleeping process ``n_interrupts`` times."""
    env = Environment()
    caught = [0]

    def sleeper():
        while True:
            try:
                yield env.timeout(1000.0)  # interrupted long before
                return
            except Interrupt:
                caught[0] += 1
                if caught[0] >= n_interrupts:
                    return

    def storm(target):
        for _ in range(n_interrupts):
            yield env.timeout(1e-6)
            target.interrupt(cause="storm")

    target = env.process(sleeper())
    env.process(storm(target))
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    return {
        "interrupts": float(n_interrupts),
        "delivered": float(caught[0]),
        "sim_end_s": env.now,
        "elapsed_s": elapsed,
        "interrupts_per_s": n_interrupts / elapsed if elapsed > 0 else 0.0,
    }


def perf_parts() -> Dict[str, Dict[str, float]]:
    """The ``perf`` bench experiment: one table per microbenchmark."""
    return {
        "event_throughput": event_throughput(),
        "timeout_churn": timeout_churn(),
        "interrupt_storm": interrupt_storm(),
    }
