"""DPDPU: Data Processing with DPUs - reproduction library.

This package reproduces the system proposed in *DPDPU: Data Processing
with DPUs* (CIDR 2025) as a pure-Python library.  The DPU hardware the
paper targets (NVIDIA BlueField-2 and friends) is modelled by a
calibrated discrete-event simulator (:mod:`repro.sim`,
:mod:`repro.hardware`); the DPDPU framework itself - the Compute,
Network, and Storage engines - lives in :mod:`repro.core` and runs
unmodified on any simulated DPU profile.

Layering (bottom to top)::

    repro.sim        discrete-event kernel
    repro.hardware   CPUs, ASICs, NICs, PCIe, SSDs, DPU profiles
    repro.algos      real data-path algorithms (DEFLATE, AES-CTR, ...)
    repro.netstack   TCP state machine, RDMA verbs, ring buffers
    repro.fs         block device, extent filesystem, page cache
    repro.core       DPDPU: ComputeEngine / NetworkEngine / StorageEngine
    repro.workloads  corpus, KV, page-server workload generators
    repro.baselines  host-only comparison paths
    repro.bench      sweep harness and report formatting
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
