"""Host storage-path baselines (Figure 2's measurement targets).

Three software paths over the same simulated SSD:

* ``"kernel"`` — the Linux block stack: ~18 K host cycles per 8 KiB
  page (calibrated from the paper's 2.7 cores @ 450 K pages/s),
* ``"io_uring"`` — slightly cheaper, "similar" per the paper,
* ``"spdk_host"`` — a host-resident userspace driver, the cheap end of
  the spectrum (what the DPU file service uses, but burning *host*
  cores instead of Arm cores).
"""

from __future__ import annotations

from ..hardware.costs import SoftwarePathCosts
from ..hardware.cpu import CpuCluster
from ..hardware.ssd import Ssd
from ..sim.stats import Counter, Tally
from ..units import PAGE_SIZE

__all__ = ["HostStoragePath", "STORAGE_PATHS"]

STORAGE_PATHS = ("kernel", "io_uring", "spdk_host")


class HostStoragePath:
    """Page I/O through one of the host software paths."""

    def __init__(self, cpu: CpuCluster, ssd: Ssd,
                 costs: SoftwarePathCosts, path: str = "kernel",
                 name: str = "host-storage"):
        if path not in STORAGE_PATHS:
            raise ValueError(
                f"unknown path {path!r}; choose from {STORAGE_PATHS}"
            )
        self.cpu = cpu
        self.ssd = ssd
        self.path = path
        self.name = name
        if path == "kernel":
            self._cycles_per_page = costs.kernel_block_io_cycles_per_page
            self._wakeup_latency_s = costs.kernel_wakeup_latency_s
        elif path == "io_uring":
            self._cycles_per_page = costs.io_uring_cycles_per_page
            self._wakeup_latency_s = costs.kernel_wakeup_latency_s
        else:
            self._cycles_per_page = costs.spdk_cycles_per_page
            self._wakeup_latency_s = 0.0     # polled-mode driver
        self.pages_read = Counter(f"{name}.pages")
        self.latency = Tally(f"{name}.latency")

    def cycles_per_page(self) -> float:
        """This path's calibrated CPU cost per 8 KiB page."""
        return self._cycles_per_page

    def read_page(self, nbytes: int = PAGE_SIZE):
        """One page read: software-path cycles + device time."""
        started = self.cpu.env.now
        pages = max(1, nbytes // PAGE_SIZE)
        yield from self.cpu.execute(self._cycles_per_page * pages)
        yield from self.ssd.read(nbytes)
        if self._wakeup_latency_s:
            # Completion interrupt + context switch back to the caller.
            yield self.cpu.env.timeout(self._wakeup_latency_s)
        self.pages_read.add(pages)
        self.latency.observe(self.cpu.env.now - started)

    def write_page(self, nbytes: int = PAGE_SIZE):
        """One page write through the same path."""
        pages = max(1, nbytes // PAGE_SIZE)
        yield from self.cpu.execute(self._cycles_per_page * pages)
        yield from self.ssd.write(nbytes)
