"""CPU-only compute baseline (Figure 1's EPYC and Arm lines).

Runs a DP-kernel-equivalent job on a host CPU cluster: the cycle cost
comes from the same calibrated kernel table the Compute Engine uses,
so the comparison against the DPU ASIC path is apples to apples.
"""

from __future__ import annotations

from typing import Optional

from ..buffers import as_buffer
from ..core.kernels import BUILTIN_KERNELS, KernelResult
from ..hardware.costs import CostModel, default_cost_model
from ..hardware.cpu import CpuCluster
from ..sim.stats import Tally

__all__ = ["HostComputeBaseline"]


class HostComputeBaseline:
    """Executes kernels on plain CPU cores (no DPU anywhere)."""

    def __init__(self, cpu: CpuCluster,
                 costs: Optional[CostModel] = None,
                 name: str = "host-compute"):
        self.cpu = cpu
        self.costs = costs or default_cost_model()
        self.name = name
        self.job_latency = Tally(f"{name}.latency")

    def run_kernel(self, kernel_name: str, payload, params=None,
                   parallelism: int = 1):
        """Run one kernel job (generator -> KernelResult).

        ``parallelism`` splits the input across that many cores, the
        way a multi-threaded compressor would.
        """
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        spec = BUILTIN_KERNELS[kernel_name]
        buffer = as_buffer(payload)
        started = self.cpu.env.now
        total_cycles = self.costs.cpu_cycles(
            kernel_name, buffer.size, self.cpu.cpu_class
        )
        share = total_cycles / parallelism
        workers = [
            self.cpu.env.process(self.cpu.execute(share))
            for _ in range(parallelism)
        ]
        yield self.cpu.env.all_of(workers)
        result: KernelResult = spec.run(buffer, params or {})
        self.job_latency.observe(self.cpu.env.now - started)
        return result

    def expected_seconds(self, kernel_name: str, nbytes: int) -> float:
        """Closed-form single-core job time (for shape assertions)."""
        cycles = self.costs.cpu_cycles(kernel_name, nbytes,
                                       self.cpu.cpu_class)
        return self.cpu.seconds_for(cycles)
