"""Kernel TCP baseline (Figure 3's measurement target).

Assembly helper: a :class:`~repro.netstack.tcp.TcpStack` in kernel
mode bound to the host ingress queue and host cores — the full
protocol cost lands on host CPUs.
"""

from __future__ import annotations

from ..hardware.server import Server
from ..netstack.tcp import TcpStack

__all__ = ["make_kernel_tcp"]


def make_kernel_tcp(server: Server, name: str = "kernel-tcp") -> TcpStack:
    """A kernel TCP stack on ``server``'s host cores."""
    return TcpStack(
        server.env, server.nic, server.nic.rx_host, server.host_cpu,
        server.costs.software, name=name, mode="kernel",
    )
