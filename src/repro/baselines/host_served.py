"""The conventional disaggregated-storage server (Figure 8 left).

The baseline DDS competes against: remote requests terminate in the
host kernel TCP stack, the host application parses and executes them
through the kernel storage stack, and responses go back out through
kernel TCP.  Every byte and every request burns host cycles — this is
the server whose "10s of CPU cores" DDS saves (Section 9).
"""

from __future__ import annotations

from ..buffers import Buffer, SynthBuffer
from ..core.dds import default_udf
from ..fs import BlockDevice, FileSystem
from ..hardware.server import Server
from ..netstack.tcp import TcpStack
from ..sim.stats import Counter, Tally
from ..units import GiB

__all__ = ["HostServedStorage"]

_ACK = SynthBuffer(64, label="ack")


class HostServedStorage:
    """A host-only remote storage server over kernel TCP."""

    def __init__(self, server: Server, port: int,
                 host_request_cycles: float = 4_000.0,
                 host_replay_cycles: float = 60_000.0,
                 fs_capacity_bytes: int = 256 * GiB,
                 name: str = "host-served"):
        if not server.ssds:
            raise ValueError("storage server needs an SSD")
        self.server = server
        self.env = server.env
        self.costs = server.costs.software
        self.port = port
        self.host_request_cycles = host_request_cycles
        self.host_replay_cycles = host_replay_cycles
        self.name = name
        self.fs = FileSystem(
            BlockDevice(server.ssd(0), capacity_bytes=fs_capacity_bytes),
            name=f"{name}.fs",
        )
        self.tcp = TcpStack(
            self.env, server.nic, server.nic.rx_host, server.host_cpu,
            self.costs, name=f"{name}.tcp", mode="kernel",
        )
        self.requests_served = Counter(f"{name}.requests")
        self.request_latency = Tally(f"{name}.latency")
        self.env.process(self._accept_loop(), name=f"{name}-accept")

    def create_file(self, file_name: str, size: int) -> int:
        """Create a served file; returns its file id."""
        return self.fs.create(file_name, size)

    def _accept_loop(self):
        listener = self.tcp.listen(self.port)
        while True:
            connection = yield listener.accept()
            self.env.process(self._serve(connection),
                             name=f"{self.name}-conn")

    def _serve(self, connection):
        # Pipelined like DDS: requests process concurrently, responses
        # re-serialize into request order.
        from ..core.dds import OrderedResponder
        ordered = OrderedResponder(self.env, connection)
        sequence = 0
        while True:
            message = yield connection.recv_message()
            self.env.process(
                self._handle_one(message, sequence, ordered),
                name=f"{self.name}-req",
            )
            sequence += 1

    def _handle_one(self, message: Buffer, sequence: int, ordered):
        started = self.env.now
        response = yield from self._handle(message)
        ordered.post(sequence, response)
        self.requests_served.add(1)
        self.request_latency.observe(self.env.now - started)

    def _handle(self, message: Buffer):
        # Interrupt-driven path: softirq wake-up + completion IRQ
        # latency that the DPU's polled path does not pay.
        wake = self.costs.kernel_wakeup_latency_s
        request = default_udf(message)
        kind = request.get("type") if request else None
        # Parsing, request handling, and block-io submission run
        # back-to-back on the host before any I/O: one fused charge
        # burns the identical cycle total in one scheduler entry.
        cycles = self.costs.udf_parse_cycles
        if kind == "log_replay":
            cycles += self.host_replay_cycles
        else:
            cycles += self.host_request_cycles
        if request is not None:
            cycles += self.costs.kernel_block_io_cycles_per_page
        cpu = self.server.host_cpu
        if cpu.charge_async(cycles):
            # Free core: the wake-up sleep and the charge collapse into
            # one timeout (the busy window starts at the wake instant
            # either way only under contention; here the core was idle,
            # so reserving it now just blocks nobody).
            yield self.env.timeout(wake + cpu.seconds_for(cycles))
        else:
            yield self.env.timeout(wake)
            yield from cpu.execute(cycles)
        if request is None:
            return _ACK
        if kind == "read":
            buffer = yield from self.fs.read(
                request["file_id"], request["offset"], request["size"]
            )
            return buffer
        # write / log_replay both persist a page.
        yield from self.fs.write(
            request["file_id"], request["offset"],
            SynthBuffer(request["size"]),
        )
        return _ACK
