"""Native host RDMA issuing baseline (Figure 7 left side).

A thin assembly: an :class:`~repro.netstack.rdma.RdmaNode` whose
issue/poll costs land on *host* cores at the native rates (QP locks,
fences, doorbell MMIO).  The NE comparison shows the same verbs issued
from the DPU with the host paying only ring writes.
"""

from __future__ import annotations

from ..hardware.server import Server
from ..netstack.rdma import RdmaNode

__all__ = ["make_host_rdma_node"]


def make_host_rdma_node(server: Server, name: str = "host-rdma",
                        use_dpu_queue: bool = False) -> RdmaNode:
    """An RDMA node issuing verbs natively from the host.

    ``use_dpu_queue`` selects the NIC ingress queue: servers whose NIC
    steers RDMA to the DPU queue (because an NE installed a flow rule)
    still deliver one-sided ops in NIC hardware either way.
    """
    rx_queue = (server.nic.rx_dpu if use_dpu_queue
                else server.nic.rx_host)
    return RdmaNode(
        server.env, server.nic, rx_queue, server.host_cpu,
        server.costs.software, name=name,
    )
