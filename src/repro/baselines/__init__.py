"""Host-only baselines: what DPDPU is compared against.

One baseline per experiment family: CPU compression (F1), host
storage paths (F2), kernel TCP (F3), native RDMA issuing (F7), and
the conventional host-served disaggregated storage server (F8/S9).
"""

from .host_compute import HostComputeBaseline
from .host_rdma import make_host_rdma_node
from .host_served import HostServedStorage
from .host_storage import STORAGE_PATHS, HostStoragePath
from .host_tcp import make_kernel_tcp

__all__ = [
    "HostComputeBaseline",
    "make_host_rdma_node",
    "HostServedStorage",
    "STORAGE_PATHS",
    "HostStoragePath",
    "make_kernel_tcp",
]
