"""Exception hierarchy for the DPDPU reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareError",
    "CapacityError",
    "KernelUnavailableError",
    "SprocError",
    "NetworkError",
    "ConnectionClosedError",
    "StorageError",
    "FileSystemError",
    "FileNotFoundOnDpuError",
    "OffloadRejected",
    "IsolationViolation",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class HardwareError(ReproError):
    """A device model was used outside its contract."""


class CapacityError(HardwareError):
    """A memory region or device queue has no free capacity."""


class KernelUnavailableError(ReproError):
    """The requested DP-kernel placement does not exist on this DPU.

    Raised only by *specified* execution with ``strict=True``; the
    default Figure-6 contract is to return ``None`` so the sproc can
    fall back to another device.
    """


class SprocError(ReproError):
    """A stored procedure failed registration or execution."""


class NetworkError(ReproError):
    """Transport-level failure in the network substrate."""


class ConnectionClosedError(NetworkError):
    """Operation attempted on a closed TCP connection / RDMA QP."""


class StorageError(ReproError):
    """Storage-path failure."""


class FileSystemError(StorageError):
    """Filesystem-level error (bad offset, unknown file, full disk)."""


class FileNotFoundOnDpuError(FileSystemError):
    """The DPU file service has no mapping for the requested file."""


class OffloadRejected(ReproError):
    """The offload engine declined a request (must go to the host)."""


class IsolationViolation(ReproError):
    """A tenant exceeded its resource envelope."""
