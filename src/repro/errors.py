"""Exception hierarchy for the DPDPU reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareError",
    "CapacityError",
    "KernelUnavailableError",
    "SprocError",
    "NetworkError",
    "ConnectionClosedError",
    "StorageError",
    "FileSystemError",
    "FileNotFoundOnDpuError",
    "OffloadRejected",
    "IsolationViolation",
    "FaultInjectedError",
    "DeadlineExceededError",
    "RetriesExhaustedError",
    "ClusterError",
    "AdmissionRejected",
    "MigrationStalledError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class FaultInjectedError(ReproError):
    """An operation failed because the fault layer said so.

    Carries the fault ``site`` (e.g. ``"ssd.server.ssd0.read"``) and
    ``kind`` so recovery code and tests can tell injected faults apart
    from genuine contract violations.
    """

    def __init__(self, message: str, site: str = "", kind: str = ""):
        super().__init__(message)
        self.site = site
        self.kind = kind


class DeadlineExceededError(ReproError):
    """An operation missed its sim-time deadline.

    ``deadline_s`` is the budget that was exceeded (relative seconds).
    """

    def __init__(self, message: str, deadline_s: float = 0.0):
        super().__init__(message)
        self.deadline_s = deadline_s


class RetriesExhaustedError(ReproError):
    """A retried operation failed on every permitted attempt.

    ``attempts`` counts the tries made; ``last_cause`` is the final
    exception, preserved so callers can inspect the underlying fault.
    """

    def __init__(self, message: str, attempts: int = 0,
                 last_cause: Exception = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_cause = last_cause


class HardwareError(ReproError):
    """A device model was used outside its contract."""


class CapacityError(HardwareError):
    """A memory region or device queue has no free capacity."""


class KernelUnavailableError(ReproError):
    """The requested DP-kernel placement does not exist on this DPU.

    Raised only by *specified* execution with ``strict=True``; the
    default Figure-6 contract is to return ``None`` so the sproc can
    fall back to another device.
    """


class SprocError(ReproError):
    """A stored procedure failed registration or execution."""


class NetworkError(ReproError):
    """Transport-level failure in the network substrate."""


class ConnectionClosedError(NetworkError):
    """Operation attempted on a closed TCP connection / RDMA QP."""


class StorageError(ReproError):
    """Storage-path failure."""


class FileSystemError(StorageError):
    """Filesystem-level error (bad offset, unknown file, full disk)."""


class FileNotFoundOnDpuError(FileSystemError):
    """The DPU file service has no mapping for the requested file."""


class OffloadRejected(ReproError):
    """The offload engine declined a request (must go to the host)."""


class IsolationViolation(ReproError):
    """A tenant exceeded its resource envelope."""


class ClusterError(ReproError):
    """Cluster-layer failure (bad shard, dead owner, routing timeout)."""


class AdmissionRejected(ReproError):
    """Ingress admission control refused the request.

    Raised *before* any expensive work is scheduled — the point of
    admission control is that rejection costs a header parse, not a
    DPU round-trip.  ``reason`` is one of ``"rate_limit"``,
    ``"queue_full"``, ``"deadline"``, ``"shed"`` or ``"isolation"``;
    ``retry_after_s`` hints when the client should try again (0 when
    retrying is pointless, e.g. an isolation violation).
    """

    def __init__(self, message: str, reason: str = "",
                 retry_after_s: float = 0.0, tenant: str = ""):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.tenant = tenant


class MigrationStalledError(ClusterError):
    """A shard pull missed its per-shard deadline.

    ``shard`` identifies the transfer; ``attempts`` counts the pulls
    tried before giving up (the retry budget).
    """

    def __init__(self, message: str, shard: int = -1,
                 attempts: int = 0):
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
