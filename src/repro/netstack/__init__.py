"""Network protocol substrate: TCP, RDMA verbs, and host/DPU rings.

These are the protocols the DPDPU Network Engine offloads.  They are
implemented once and parameterized by *which CPU pays the processing
cycles*, so the host-kernel baseline and the DPU-offloaded path share
the exact same state machines.
"""

from .rdma import RdmaMemoryRegion, RdmaNode, RdmaQp, connect_qp
from .ringbuffer import RingBuffer, RingPair
from .tcp import TcpConnection, TcpListener, TcpStack

__all__ = [
    "RdmaMemoryRegion",
    "RdmaNode",
    "RdmaQp",
    "connect_qp",
    "RingBuffer",
    "RingPair",
    "TcpConnection",
    "TcpListener",
    "TcpStack",
]
