"""Lock-free SPSC ring buffers between host and DPU.

Section 6/7's key host-side primitive: applications enqueue requests
into DMA-accessible rings with plain stores (no locks, no doorbell
MMIO), and the DPU *lazily* pulls batches with its DMA engine.  The
"lock-free" property shows up in the cost model — a ring push costs
~90 host cycles versus ~650 for a native RDMA verb issue — and in the
non-blocking API (``try_push`` fails rather than spins when full).

:class:`RingPair` bundles the two directions: a submission ring
(host -> DPU) and a completion ring (DPU -> host), exactly like an
NVMe or io_uring SQ/CQ pair.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional

from ..obs.trace import NULL_TRACER
from ..sim import Environment, Store
from ..sim.stats import Counter, TimeWeighted

__all__ = ["RingBuffer", "RingPair"]


class RingBuffer:
    """A bounded single-producer/single-consumer queue."""

    def __init__(self, env: Environment, capacity: int = 1024,
                 name: str = "ring", tracer=None,
                 category: str = "app", injector=None):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.category = category
        #: optional FaultInjector; site ring.<name> (stall windows)
        self.injector = injector
        self._entries: deque = deque()
        self.pushes = Counter(f"{name}.pushes")
        self.push_failures = Counter(f"{name}.push_failures")
        self.stalls = Counter(f"{name}.stalls")
        self.pops = Counter(f"{name}.pops")
        self.occupancy = TimeWeighted(f"{name}.occupancy")
        #: Wakeup channel for the consumer's polling loop.  A real
        #: consumer spins on the ring head; simulating every empty
        #: poll would flood the event queue, so consumers sleep on
        #: this signal instead and charge their poll latency on
        #: wake-up — same timing, bounded events.
        self.signal: "Store" = Store(env, capacity=1,
                                     name=f"{name}.signal")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def try_push(self, item: Any) -> bool:
        """Producer side: non-blocking enqueue; False when full.

        A stalled ring (fault window ``ring.<name>`` down) also
        refuses pushes — to the producer it is indistinguishable from
        a full ring, which is exactly how a wedged consumer looks.
        """
        if self.injector is not None and \
                self.injector.is_down(f"ring.{self.name}"):
            self.stalls.add(1)
            self.push_failures.add(1)
            return False
        if self.full:
            self.push_failures.add(1)
            return False
        if self.tracer.enabled and isinstance(item, dict):
            item["_ring_span"] = self.tracer.begin(
                f"{self.name}.hop", category=self.category,
                parent=item.get("span"), depth=len(self._entries),
            )
        self._entries.append(item)
        self.pushes.add(1)
        self.occupancy.set(len(self._entries), self.env.now)
        if not self.signal.items and not self.signal._putters:
            self.signal.put(True)
        return True

    def poll_batch(self, max_items: int = 32) -> List[Any]:
        """Consumer side: drain up to ``max_items`` entries."""
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        batch: List[Any] = []
        while self._entries and len(batch) < max_items:
            batch.append(self._entries.popleft())
        if batch:
            self.pops.add(len(batch))
            self.occupancy.set(len(self._entries), self.env.now)
            if self.tracer.enabled:
                for item in batch:
                    if isinstance(item, dict):
                        hop = item.pop("_ring_span", None)
                        if hop is not None:
                            hop.finish()
        return batch

    def peek(self) -> Optional[Any]:
        """The oldest entry without removing it (None when empty)."""
        return self._entries[0] if self._entries else None


class RingPair:
    """A submission/completion ring pair shared by host and DPU."""

    def __init__(self, env: Environment, capacity: int = 1024,
                 name: str = "rings", tracer=None,
                 category: str = "app", injector=None):
        self.submission = RingBuffer(env, capacity, f"{name}.sq",
                                     tracer=tracer, category=category,
                                     injector=injector)
        self.completion = RingBuffer(env, capacity, f"{name}.cq",
                                     tracer=tracer, category=category,
                                     injector=injector)

    def submit(self, request: Any) -> bool:
        """Host side: enqueue a request descriptor."""
        return self.submission.try_push(request)

    def complete(self, response: Any) -> bool:
        """DPU side: post a completion."""
        return self.completion.try_push(response)

    def poll_submissions(self, max_items: int = 32) -> List[Any]:
        """DPU side: pull a batch of pending requests."""
        return self.submission.poll_batch(max_items)

    def poll_completions(self, max_items: int = 32) -> List[Any]:
        """Host side: reap a batch of completions."""
        return self.completion.poll_batch(max_items)
