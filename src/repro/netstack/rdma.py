"""RDMA verbs over the simulated NIC substrate.

Models the properties the paper's Section 6 relies on:

* **one-sided** READ/WRITE execute entirely in the remote NIC — the
  remote CPU is never charged a cycle;
* **two-sided** SEND/RECV deliver to a receive queue the remote
  application drains (charging its poll cost);
* **issuing is CPU-costly on the initiator**: posting a verb charges
  ``rdma_issue_cycles_per_op`` (queue-pair lock, memory fences,
  doorbell MMIO) and reaping a completion charges
  ``rdma_poll_cycles_per_op`` — the overheads the Network Engine
  removes from the host by moving them to the DPU.

Wire behaviour: verbs ride the same :class:`~repro.hardware.nic.Wire`
as everything else, so serialization and propagation delays are
shared with TCP traffic.  RDMA assumes a lossless fabric (PFC), so no
retransmission machinery is modelled.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..buffers import Buffer, SynthBuffer, as_buffer
from ..errors import NetworkError
from ..hardware.costs import SoftwarePathCosts
from ..hardware.cpu import CpuCluster
from ..hardware.nic import Nic
from ..obs.trace import NULL_TRACER
from ..sim import Environment, Event, Store
from ..sim.stats import Counter, Tally

__all__ = ["RdmaMemoryRegion", "RdmaNode", "RdmaQp", "connect_qp"]

_HEADER_BYTES = 58                 # eth + ip + ib/roce headers
_wr_ids = itertools.count(1)
_qp_ids = itertools.count(1)


class RdmaMemoryRegion:
    """A registered memory region addressable by remote NICs."""

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise ValueError("region size must be positive")
        self.name = name
        self.size = size
        self._contents: Dict[int, Buffer] = {}
        #: 64-bit words targeted by atomic verbs, keyed by offset.
        self._atomics: Dict[int, int] = {}

    def write(self, offset: int, buffer: Buffer) -> None:
        """Store ``buffer`` at ``offset`` (bounds-checked)."""
        if offset < 0 or offset + buffer.size > self.size:
            raise NetworkError(
                f"write [{offset}, {offset + buffer.size}) outside "
                f"region {self.name!r} of {self.size} bytes"
            )
        self._contents[offset] = buffer

    def read(self, offset: int, size: int) -> Buffer:
        """Read ``size`` bytes at ``offset`` (bounds-checked)."""
        if offset < 0 or offset + size > self.size:
            raise NetworkError(
                f"read [{offset}, {offset + size}) outside region "
                f"{self.name!r} of {self.size} bytes"
            )
        stored = self._contents.get(offset)
        if stored is not None and stored.size == size:
            return stored
        return SynthBuffer(size, label=f"{self.name}@{offset}")

    def fetch_add(self, offset: int, delta: int) -> int:
        """Atomically add ``delta`` at ``offset``; returns old value."""
        if not 0 <= offset <= self.size - 8:
            raise NetworkError(
                f"atomic at {offset} outside region {self.name!r}"
            )
        old = self._atomics.get(offset, 0)
        self._atomics[offset] = old + delta
        return old

    def compare_swap(self, offset: int, expected: int,
                     desired: int) -> int:
        """Atomic CAS at ``offset``; returns the value read."""
        if not 0 <= offset <= self.size - 8:
            raise NetworkError(
                f"atomic at {offset} outside region {self.name!r}"
            )
        old = self._atomics.get(offset, 0)
        if old == expected:
            self._atomics[offset] = desired
        return old


class RdmaQp:
    """One endpoint of a connected queue pair."""

    def __init__(self, node: "RdmaNode", qp_id: int):
        self.node = node
        self.env = node.env
        self.qp_id = qp_id
        self.peer: Optional["RdmaQp"] = None
        #: fabric address of the peer node (None on p2p wires)
        self.remote_address: Optional[str] = None
        #: completion queue: dicts {wr_id, op, buffer?}
        self.cq: Store = Store(self.env, name=f"qp{qp_id}.cq")
        #: receive queue for two-sided SENDs
        self.rq: Store = Store(self.env, name=f"qp{qp_id}.rq")
        self._pending: Dict[int, Event] = {}
        self._pending_spans: Dict[int, object] = {}
        self.ops_posted = Counter(f"qp{qp_id}.ops")
        self.op_latency = Tally(f"qp{qp_id}.latency")

    # -- posting verbs (charges the initiator's CPU) -------------------------

    def post_write(self, region: str, offset: int, payload):
        """One-sided WRITE (generator -> completion event)."""
        buffer = as_buffer(payload)
        return (yield from self._post(
            "write", buffer.size + _HEADER_BYTES,
            {"region": region, "offset": offset, "buffer": buffer},
        ))

    def post_read(self, region: str, offset: int, size: int):
        """One-sided READ (generator -> completion event).

        The completion carries the remote buffer.
        """
        return (yield from self._post(
            "read", _HEADER_BYTES,
            {"region": region, "offset": offset, "size": size},
        ))

    def post_send(self, payload):
        """Two-sided SEND (generator -> completion event)."""
        buffer = as_buffer(payload)
        return (yield from self._post(
            "send", buffer.size + _HEADER_BYTES, {"buffer": buffer},
        ))

    def post_fetch_add(self, region: str, offset: int, delta: int = 1):
        """One-sided atomic FETCH_ADD (generator -> completion event).

        The completion's ``value`` is the counter's value *before* the
        add — the primitive behind RDMA sequencers (cf. Thostrup et
        al.'s DPU sequencer evaluation).  Atomicity holds because the
        remote NIC applies operations serially.
        """
        return (yield from self._post(
            "fetch_add", _HEADER_BYTES,
            {"region": region, "offset": offset, "delta": delta},
        ))

    def post_compare_swap(self, region: str, offset: int,
                          expected: int, desired: int):
        """One-sided atomic COMPARE_AND_SWAP (generator -> event).

        The completion's ``value`` is the word read at the offset; the
        swap happened iff it equals ``expected``.
        """
        return (yield from self._post(
            "cas", _HEADER_BYTES,
            {"region": region, "offset": offset,
             "expected": expected, "desired": desired},
        ))

    def _post(self, op: str, wire_bytes: int, body: dict):
        if self.peer is None:
            raise NetworkError("queue pair is not connected")
        wr_id = next(_wr_ids)
        completion = self.env.event()
        self._pending[wr_id] = completion
        if self.node.tracer.enabled:
            self._pending_spans[wr_id] = self.node.tracer.begin(
                f"rdma.{op}", category="network", qp=self.qp_id,
                wr_id=wr_id, wire_bytes=wire_bytes,
            )
        self.ops_posted.add(1)
        frame = {
            "proto": "rdma", "op": op, "qp": self.peer.qp_id,
            "src_qp": self.qp_id, "wr_id": wr_id,
            "dst": self.remote_address,
            "src": self.node.nic.address,
            "posted_at": self.env.now, **body,
        }
        yield from self.node._charge_issue()
        yield from self.node.nic.transmit(frame, wire_bytes)
        return completion

    # -- completions ----------------------------------------------------------

    def poll_cq(self):
        """Reap the next completion (generator; charges poll cycles)."""
        completion = yield self.cq.get()
        yield from self.node._charge_poll()
        return completion

    def post_recv(self):
        """Wait for the next two-sided SEND (generator; charges poll)."""
        message = yield self.rq.get()
        yield from self.node._charge_poll()
        return message

    # -- NIC-side handlers (no CPU anywhere) ------------------------------------

    def _complete(self, wr_id: int, op: str,
                  buffer: Optional[Buffer], posted_at: float,
                  value: Optional[int] = None) -> None:
        completion = self._pending.pop(wr_id, None)
        record = {"wr_id": wr_id, "op": op, "buffer": buffer,
                  "value": value}
        self.op_latency.observe(self.env.now - posted_at)
        span = self._pending_spans.pop(wr_id, None)
        if span is not None:
            span.annotate(latency_s=self.env.now - posted_at)
            span.finish()
        self.cq.put(record)
        if completion is not None and not completion.triggered:
            completion.succeed(record)


class RdmaNode:
    """The RDMA stack instance at one server (one per NIC)."""

    def __init__(self, env: Environment, nic: Nic, rx_queue: Store,
                 cpu: CpuCluster, costs: SoftwarePathCosts,
                 name: str = "rdma",
                 issue_cycles: Optional[float] = None,
                 poll_cycles: Optional[float] = None,
                 tracer=None):
        self.env = env
        self.nic = nic
        self.cpu = cpu
        self.costs = costs
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._issue_cycles = (
            costs.rdma_issue_cycles_per_op
            if issue_cycles is None else issue_cycles
        )
        self._poll_cycles = (
            costs.rdma_poll_cycles_per_op
            if poll_cycles is None else poll_cycles
        )
        self.regions: Dict[str, RdmaMemoryRegion] = {}
        self.qps: Dict[int, RdmaQp] = {}
        self.ops_served = Counter(f"{name}.remote_ops")
        env.process(self._nic_loop(rx_queue), name=f"{name}-nic")

    # -- setup -----------------------------------------------------------------

    def register_region(self, name: str, size: int) -> RdmaMemoryRegion:
        """Register a memory region for remote access."""
        if name in self.regions:
            raise NetworkError(f"region {name!r} already registered")
        region = RdmaMemoryRegion(name, size)
        self.regions[name] = region
        return region

    def create_qp(self) -> RdmaQp:
        """Create an unconnected queue pair on this node."""
        qp = RdmaQp(self, next(_qp_ids))
        self.qps[qp.qp_id] = qp
        return qp

    # -- cost hooks (overridden by the NE's offloaded issuing) ------------------

    def _charge_issue(self):
        yield from self.cpu.execute(self._issue_cycles)

    def _charge_poll(self):
        yield from self.cpu.execute(self._poll_cycles)

    # -- NIC-hardware processing: zero CPU cycles --------------------------------

    def _nic_loop(self, rx_queue: Store):
        def mine(frame):
            # A real NIC demuxes by QP number; several RdmaNodes may
            # share one ingress queue (e.g. the NE's node and a host
            # node), so only claim frames addressed to our QPs.
            return (frame.get("proto") == "rdma"
                    and frame.get("qp") in self.qps)

        while True:
            frame = yield rx_queue.get(mine)
            op = frame["op"]
            if op == "write":
                self._handle_write(frame)
            elif op == "read":
                self._handle_read(frame)
            elif op == "send":
                self._handle_send(frame)
            elif op in ("fetch_add", "cas"):
                self._handle_atomic(frame)
            elif op == "atomic_resp":
                self._handle_atomic_resp(frame)
            elif op == "ack":
                self._handle_ack(frame)
            elif op == "read_resp":
                self._handle_read_resp(frame)

    def _handle_write(self, frame: dict) -> None:
        region = self.regions.get(frame["region"])
        if region is not None:
            region.write(frame["offset"], frame["buffer"])
        self.ops_served.add(1)
        self._reply(frame, {"op": "ack"}, _HEADER_BYTES)

    def _handle_read(self, frame: dict) -> None:
        region = self.regions.get(frame["region"])
        buffer = (
            region.read(frame["offset"], frame["size"])
            if region is not None
            else SynthBuffer(frame["size"], label="unregistered")
        )
        self.ops_served.add(1)
        self._reply(frame, {"op": "read_resp", "buffer": buffer},
                    buffer.size + _HEADER_BYTES)

    def _handle_send(self, frame: dict) -> None:
        qp = self.qps.get(frame["qp"])
        if qp is not None:
            qp.rq.put({"buffer": frame["buffer"],
                       "src_qp": frame["src_qp"]})
        self.ops_served.add(1)
        self._reply(frame, {"op": "ack"}, _HEADER_BYTES)

    def _handle_atomic(self, frame: dict) -> None:
        region = self.regions.get(frame["region"])
        if region is None:
            value = 0
        elif frame["op"] == "fetch_add":
            value = region.fetch_add(frame["offset"], frame["delta"])
        else:
            value = region.compare_swap(
                frame["offset"], frame["expected"], frame["desired"]
            )
        self.ops_served.add(1)
        self._reply(frame, {"op": "atomic_resp", "value": value},
                    _HEADER_BYTES)

    def _handle_atomic_resp(self, frame: dict) -> None:
        qp = self.qps.get(frame["qp"])
        if qp is not None:
            qp._complete(frame["wr_id"], frame["orig_op"], None,
                         frame["posted_at"], value=frame["value"])

    def _handle_ack(self, frame: dict) -> None:
        qp = self.qps.get(frame["qp"])
        if qp is not None:
            qp._complete(frame["wr_id"], frame["orig_op"], None,
                         frame["posted_at"])

    def _handle_read_resp(self, frame: dict) -> None:
        qp = self.qps.get(frame["qp"])
        if qp is not None:
            qp._complete(frame["wr_id"], "read", frame["buffer"],
                         frame["posted_at"])

    def _reply(self, request: dict, overrides: dict,
               wire_bytes: int) -> None:
        response = {
            "proto": "rdma", "qp": request["src_qp"],
            "src_qp": request["qp"], "wr_id": request["wr_id"],
            "dst": request.get("src"), "src": self.nic.address,
            "posted_at": request["posted_at"],
            "orig_op": request["op"], **overrides,
        }
        self.env.process(self._transmit(response, wire_bytes))

    def _transmit(self, frame: dict, wire_bytes: int):
        yield from self.nic.transmit(frame, wire_bytes)


def connect_qp(node_a: RdmaNode, node_b: RdmaNode) -> Tuple[RdmaQp, RdmaQp]:
    """Create and connect a queue pair between two nodes."""
    qp_a = node_a.create_qp()
    qp_b = node_b.create_qp()
    qp_a.peer = qp_b
    qp_b.peer = qp_a
    qp_a.remote_address = node_b.nic.address
    qp_b.remote_address = node_a.nic.address
    return qp_a, qp_b
