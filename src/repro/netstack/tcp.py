"""A TCP implementation over the simulated NIC/wire substrate.

This is the protocol engine shared by the *kernel TCP* baseline
(Figure 3's measurement target) and the Network Engine's DPU-offloaded
stack (Section 6): the state machine is identical; what differs is
**which CPU pays the per-segment cycles** and at what rate, selected by
the stack's ``mode`` ("kernel" on host cores vs "dpu" on Arm cores with
the optimized userspace stack).

Implemented behaviour:

* three-way handshake (SYN / SYN-ACK / ACK) and FIN teardown,
* byte-stream sequence numbers, cumulative ACKs, out-of-order
  reassembly at the receiver,
* receive-window flow control (bounded receive buffer, advertised
  window honoured by the sender),
* congestion control: slow start, congestion avoidance (AIMD), fast
  retransmit on three duplicate ACKs, RTO with exponential backoff and
  RFC 6298 RTT estimation,
* message framing on top of the stream (one ``send_message`` becomes
  one or more MSS-sized segments; the receiver reassembles the
  original buffer),
* loss injection via the wire for exercising the recovery paths.

CPU accounting: transmit-side cycles are charged inline in the sender
process (the data path really waits for them); receive-side cycles are
charged asynchronously so that a single dispatcher process does not
artificially serialize softirq work that real kernels spread across
cores.  Either way every cycle lands in the owning cluster's busy-time
integral, which is what Figures 2/3 measure.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, Optional

from ..buffers import Buffer, SynthBuffer, RealBuffer, as_buffer
from ..errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    FaultInjectedError,
    NetworkError,
)
from ..hardware.costs import SoftwarePathCosts
from ..hardware.cpu import CpuCluster
from ..hardware.nic import Nic
from ..obs.trace import NULL_TRACER
from ..sim import Environment, Store
from ..sim.resources import Container
from ..sim.stats import Counter, Tally

__all__ = ["TcpStack", "TcpConnection", "TcpListener"]

_MSS = 8960                       # jumbo-frame payload, one 8 KiB page fits
_HEADER_BYTES = 66                # eth + ip + tcp headers on the wire
_INIT_CWND = 10 * _MSS
_MIN_RTO = 2e-3
_INIT_RTO = 20e-3
_MAX_RTO = 0.2                    # backoff ceiling (data RTO and SYN)

_conn_ids = itertools.count(1)

#: Upper bound on segments coalesced into one CPU charge + NIC burst
#: (TSO-style); bounds head-of-line blocking on the TX serializer.
_MAX_BURST = 16


def _concat(buffers) -> Buffer:
    """Reassemble segment payloads into one message buffer."""
    if len(buffers) == 1:
        return buffers[0]
    if all(isinstance(b, RealBuffer) for b in buffers):
        return RealBuffer(b"".join(b.data for b in buffers))
    total = sum(b.size for b in buffers)
    first = buffers[0]
    ratio = getattr(first, "compress_ratio", 3.0)
    label = getattr(first, "label", "")
    return SynthBuffer(total, ratio, label)


class TcpListener:
    """A passive socket: accepted connections arrive in a queue."""

    def __init__(self, stack: "TcpStack", port: int):
        self.stack = stack
        self.port = port
        self._accepted = Store(stack.env, name=f"listen:{port}")

    def accept(self):
        """Event yielding the next established :class:`TcpConnection`."""
        return self._accepted.get()

    def _deliver(self, connection: "TcpConnection") -> None:
        self._accepted.put(connection)


class TcpConnection:
    """One established TCP connection endpoint."""

    def __init__(self, stack: "TcpStack", cid: int, port: int,
                 send_buffer_bytes: int = 1 << 20,
                 recv_buffer_bytes: int = 1 << 20,
                 remote: Optional[str] = None):
        self.stack = stack
        self.env = stack.env
        self.cid = cid
        self.port = port
        #: fabric address of the peer (None on point-to-point wires)
        self.remote = remote
        self.closed = False

        # --- sender state ---
        self._snd_buffer = Container(
            self.env, capacity=send_buffer_bytes, init=send_buffer_bytes
        )
        self._snd_queue = Store(self.env, capacity=64)   # queued messages
        self._snd_base = 0                          # oldest unacked seq
        self._snd_next = 0                          # next seq to send
        self._inflight: Dict[int, dict] = {}        # seq -> segment
        self._cwnd = float(_INIT_CWND)
        self._ssthresh = float(1 << 20)
        self._peer_rwnd = 1 << 20
        self._dup_acks = 0
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto = _INIT_RTO
        #: single pending retransmission timer (a Timeout with _on_rto
        #: as its callback).  Re-arming only moves the deadline; the
        #: timer itself re-sleeps when it fires early, so bursts and
        #: ACKs cost no timer churn.
        self._rto_timer = None
        self._rto_deadline = 0.0
        self._window_open = self.env.event()
        self._sender_proc = self.env.process(
            self._sender_loop(), name=f"tcp-send-{cid}"
        )

        # --- receiver state ---
        self._rcv_next = 0
        self._rcv_buffer_bytes = recv_buffer_bytes
        self._rcv_pending = 0                       # bytes not yet read
        self._out_of_order: Dict[int, dict] = {}
        self._assembly: Dict[int, list] = {}        # msg_id -> buffers
        self._messages = Store(self.env)            # reassembled Buffers

        # --- metrics ---
        self.retransmits = Counter(f"tcp{cid}.retransmits")
        self.messages_sent = Counter(f"tcp{cid}.msgs_sent")
        self.messages_received = Counter(f"tcp{cid}.msgs_recv")
        self.message_latency = Tally(f"tcp{cid}.msg_latency")

    # ---------------------------------------------------------------- send

    def send_message(self, payload, msg_id: Optional[int] = None):
        """Queue one message for transmission (generator).

        Completes when the message is accepted into the (bounded) send
        queue — flow control applies back-pressure through this call.
        """
        if self.closed:
            raise ConnectionClosedError(f"connection {self.cid} is closed")
        buffer = as_buffer(payload)
        yield self._snd_queue.put({
            "buffer": buffer,
            "enqueued_at": self.env.now,
        })
        self.messages_sent.add(1)

    def try_send_message(self, payload) -> bool:
        """Queue one message *now* if the send queue has room.

        Synchronous fast path for :meth:`send_message`: returns True
        when the message was accepted immediately (same effect and
        ordering as the generator path), False when the queue is full
        or earlier senders are still blocked — callers then fall back
        to ``yield from send_message(...)`` for back-pressure.
        """
        if self.closed:
            raise ConnectionClosedError(f"connection {self.cid} is closed")
        queue = self._snd_queue
        if queue._putters or len(queue.items) >= queue.capacity:
            return False
        queue.items.append({
            "buffer": as_buffer(payload),
            "enqueued_at": self.env.now,
        })
        if queue._getters:
            queue._drain()
        self.messages_sent.add(1)
        return True

    def drain(self):
        """Generator that completes when all queued data is ACKed."""
        while self._inflight or len(self._snd_queue.items):
            yield self.env.timeout(self._rto / 4)

    def _sender_loop(self):
        env = self.env
        stack = self.stack
        queue = self._snd_queue
        while True:
            item = yield queue.get()
            if stack.tracer.enabled:
                yield from self._send_message_traced(item)
                continue
            buffer: Buffer = item["buffer"]
            offset = 0
            size = max(buffer.size, 1)
            while item is not None:
                chunk = min(_MSS, size - offset)
                # Blocking prelude, identical to the unbatched path:
                # send-buffer credit and an open window for the first
                # segment of the burst.
                yield self._snd_buffer.get(chunk)
                yield from self._await_window(chunk)
                # Burst builder (TSO-style): greedily gather every
                # segment sendable *right now* — across queued
                # messages, while the window and buffer credit last —
                # without yielding, so the snapshot stays consistent.
                batch = []
                cycles = 0.0
                window = min(self._cwnd, self._peer_rwnd)
                inflight_bytes = self._snd_next - self._snd_base
                credit = self._snd_buffer.level
                now = env.now
                per_msg = stack._per_msg
                per_byte = stack._per_byte
                while True:
                    if offset == 0 and chunk >= buffer.size:
                        payload = buffer    # whole message, one segment
                    elif buffer.size:
                        payload = buffer.slice(
                            offset, min(chunk, buffer.size - offset)
                        )
                    else:
                        payload = buffer
                    last = offset + chunk >= size
                    seq = self._snd_next
                    self._snd_next += chunk
                    segment = {
                        "proto": "tcp", "kind": "data", "cid": self.cid,
                        "dst": self.remote, "src": stack.address,
                        "port": self.port, "seq": seq, "len": chunk,
                        "payload": payload, "last": last,
                        "enqueued_at": item["enqueued_at"],
                        "sent_at": now, "retransmitted": False,
                    }
                    self._inflight[seq] = segment
                    batch.append(segment)
                    cycles += per_msg + per_byte * chunk
                    inflight_bytes += chunk
                    offset += chunk
                    if last:
                        item = self._next_queued()
                        if item is None:
                            break
                        buffer = item["buffer"]
                        offset = 0
                        size = max(buffer.size, 1)
                    if len(batch) >= _MAX_BURST:
                        break
                    chunk = min(_MSS, size - offset)
                    if inflight_bytes + chunk > window:
                        break
                    if credit < chunk:
                        break
                    credit -= chunk
                    # Inline by construction: credit tracks the level
                    # and this process is the only getter.
                    self._snd_buffer.get(chunk)
                # One fused CPU charge and one NIC burst for the lot.
                # Fastest path: both the charge and the serializer
                # become eventless reservations and the sender parks
                # on a single timeout spanning charge + serialization
                # — frame arrival times and the resume instant match
                # the evented sequence exactly.
                frames = [(seg, seg["len"] + _HEADER_BYTES)
                          for seg in batch]
                cpu = stack.cpu
                wait = None
                charged = False
                if cpu.injector is None:
                    charge_s = cpu.seconds_for(cycles)
                    charged = cpu.charge_async(cycles)
                    if charged:
                        wait = stack.nic.transmit_batch_after(
                            charge_s, frames)
                        if wait is None and charge_s > 0:
                            # TX contended: the charge is burned, so
                            # just advance past it before the evented
                            # transmit below.
                            yield env.timeout(charge_s)
                if wait is not None:
                    stack.segments_tx.add(len(batch))
                    yield env.timeout(wait)
                else:
                    if not charged:
                        yield from stack._charge_cycles(cycles)
                    stack.segments_tx.add(len(batch))
                    yield from stack.nic.transmit_batch(frames)
                self._arm_rto()

    def _next_queued(self) -> Optional[dict]:
        """Pop the next queued message synchronously (burst builder)."""
        queue = self._snd_queue
        if not queue.items:
            return None
        item = queue.items.popleft()
        if queue._putters:
            queue._drain()      # wake a send_message blocked on space
        return item

    def _send_message_traced(self, item: dict):
        """Unbatched per-segment path, kept for traced runs so every
        message still gets its own span with a segment count."""
        buffer: Buffer = item["buffer"]
        offset = 0
        size = max(buffer.size, 1)
        segments = 0
        with self.stack.tracer.span(
                "tcp.msg_tx", category="network", cid=self.cid,
                bytes=buffer.size) as span:
            while offset < size:
                chunk = min(_MSS, size - offset)
                # Reserve send-buffer space for the bytes in
                # flight; released as ACKs cover them.
                yield self._snd_buffer.get(chunk)
                yield from self._await_window(chunk)
                if offset == 0 and chunk >= buffer.size:
                    payload = buffer    # whole message, one segment
                elif buffer.size:
                    payload = buffer.slice(
                        offset, min(chunk, buffer.size - offset)
                    )
                else:
                    payload = buffer
                last = offset + chunk >= size
                yield from self._transmit_segment(
                    payload, chunk, last, item["enqueued_at"]
                )
                offset += chunk
                segments += 1
            span.annotate(segments=segments)

    def _await_window(self, chunk: int):
        while True:
            window = min(self._cwnd, self._peer_rwnd)
            inflight_bytes = self._snd_next - self._snd_base
            if inflight_bytes + chunk <= window:
                return
            self._window_open = self.env.event()
            yield self._window_open

    def _transmit_segment(self, payload: Buffer, chunk: int, last: bool,
                          enqueued_at: float):
        seq = self._snd_next
        self._snd_next += chunk
        segment = {
            "proto": "tcp", "kind": "data", "cid": self.cid,
            "dst": self.remote, "src": self.stack.address,
            "port": self.port, "seq": seq, "len": chunk,
            "payload": payload, "last": last,
            "enqueued_at": enqueued_at, "sent_at": self.env.now,
            "retransmitted": False,
        }
        self._inflight[seq] = segment
        yield from self.stack._charge_tx(chunk)
        yield from self.stack._send_frame(segment, chunk + _HEADER_BYTES)
        self._arm_rto()

    # ------------------------------------------------------------- receive

    def recv_message(self):
        """Event yielding the next complete message :class:`Buffer`.

        Reading releases receive-buffer space, which re-opens the
        advertised window (application-level back-pressure).
        """
        event = self._messages.get()

        def _consumed(consumed_event):
            if consumed_event.ok:
                before = self._advertised_window()
                self._rcv_pending -= max(consumed_event.value.size, 1)
                # Window update: if consumption reopened a (nearly)
                # closed window, tell the sender — otherwise a
                # zero-window stall never resolves (TCP's classic
                # window-update/persist problem).
                if before < _MSS <= self._advertised_window():
                    self.stack._post_ack(self)

        if event.callbacks is None:
            # The store had a message on hand and completed the get
            # inline; account for the consumption immediately.
            _consumed(event)
        else:
            event.callbacks.append(_consumed)
        return event

    def _on_data(self, segment: dict) -> None:
        seq = segment["seq"]
        if seq == self._rcv_next:
            self._accept_segment(segment)
            # Drain any contiguous out-of-order segments.
            while self._rcv_next in self._out_of_order:
                self._accept_segment(
                    self._out_of_order.pop(self._rcv_next)
                )
        elif seq > self._rcv_next:
            self._out_of_order[seq] = segment
        # else: duplicate of already-received data; just re-ACK.
        self.stack._post_ack(self)

    def _accept_segment(self, segment: dict) -> None:
        self._rcv_next += segment["len"]
        self._rcv_pending += segment["len"]
        parts = self._assembly.setdefault(0, [])
        parts.append(segment["payload"])
        if segment["last"]:
            message = _concat(parts)
            self._assembly[0] = []
            self._messages.put(message)
            self.messages_received.add(1)
            self.message_latency.observe(
                self.env.now - segment["enqueued_at"]
            )
            if self.stack.tracer.enabled:
                self.stack.tracer.instant(
                    "tcp.msg_rx", category="network", cid=self.cid,
                    bytes=message.size,
                    latency_s=self.env.now - segment["enqueued_at"],
                )

    def _advertised_window(self) -> int:
        return max(0, self._rcv_buffer_bytes - self._rcv_pending)

    # ----------------------------------------------------------------- ACKs

    def _on_ack(self, frame: dict) -> None:
        ack = frame["ack"]
        self._peer_rwnd = frame["rwnd"]
        if ack > self._snd_base:
            # _inflight's keys are ascending by construction: seq
            # allocation is monotonic, acks pop a prefix, and a
            # retransmission updates its key in place — so the scan
            # for acked segments can stop at the first survivor
            # instead of walking the whole window per ACK.
            newly_acked = []
            for seq, segment in self._inflight.items():
                if seq + segment["len"] > ack:
                    break
                newly_acked.append(seq)
            for seq in newly_acked:
                segment = self._inflight.pop(seq)
                if not segment["retransmitted"]:
                    self._update_rtt(self.env.now - segment["sent_at"])
                self._snd_buffer.put(max(segment["len"], 1))
                self._grow_cwnd(segment["len"])
            self._snd_base = ack
            self._dup_acks = 0
            if self._inflight:
                self._arm_rto()
            # else: a pending timer finds _inflight empty when it
            # fires and disarms itself.
        elif ack == self._snd_base and self._inflight:
            self._dup_acks += 1
            if self._dup_acks == 3:
                self._fast_retransmit()
        self._open_window()

    def _open_window(self) -> None:
        if not self._window_open.triggered:
            self._window_open.succeed()

    def _grow_cwnd(self, acked_bytes: int) -> None:
        if self._cwnd < self._ssthresh:
            self._cwnd += acked_bytes                 # slow start
        else:
            self._cwnd += _MSS * acked_bytes / self._cwnd   # AIMD
        self._cwnd = min(self._cwnd, 64 << 20)

    def _update_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(
                self._srtt - sample
            )
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(_MAX_RTO,
                        max(_MIN_RTO, self._srtt + 4 * self._rttvar))

    def _fast_retransmit(self) -> None:
        self._ssthresh = max(self._cwnd / 2, 2 * _MSS)
        self._cwnd = self._ssthresh + 3 * _MSS
        self._retransmit_base()

    def _retransmit_base(self) -> None:
        segment = self._inflight.get(self._snd_base)
        if segment is None:
            return
        segment["retransmitted"] = True
        self.retransmits.add(1)
        self.stack.tracer.instant(
            "tcp.retransmit", category="network", cid=self.cid,
            seq=segment["seq"], bytes=segment["len"],
        )
        self.env.process(self._resend(segment))

    def _resend(self, segment: dict):
        yield from self.stack._charge_tx(segment["len"])
        yield from self.stack._send_frame(
            segment, segment["len"] + _HEADER_BYTES
        )

    def _arm_rto(self) -> None:
        # Moving the deadline is a float store; a real timer exists
        # only while segments are in flight, and re-sleeps for the
        # remainder when it fires before the (moved) deadline.
        self._rto_deadline = self.env.now + self._rto
        if self._rto_timer is None:
            timer = self.env.timeout(self._rto)
            timer.callbacks.append(self._on_rto)
            self._rto_timer = timer

    def _on_rto(self, _event) -> None:
        self._rto_timer = None
        if not self._inflight:
            return
        remaining = self._rto_deadline - self.env.now
        if remaining > 1e-12:
            timer = self.env.timeout(remaining)
            timer.callbacks.append(self._on_rto)
            self._rto_timer = timer
            return
        # Timeout: multiplicative decrease, back off, retransmit.
        self._ssthresh = max(self._cwnd / 2, 2 * _MSS)
        self._cwnd = float(_MSS)
        self._rto = min(self._rto * 2, _MAX_RTO)
        self._retransmit_base()
        self._arm_rto()

    # ----------------------------------------------------------------- close

    def close(self):
        """Send FIN and mark the connection closed (generator)."""
        if self.closed:
            return
        self.closed = True
        fin = {"proto": "tcp", "kind": "fin", "cid": self.cid,
               "dst": self.remote, "src": self.stack.address,
               "port": self.port}
        yield from self.stack._send_frame(fin, _HEADER_BYTES)

    @property
    def cwnd_bytes(self) -> float:
        return self._cwnd

    @property
    def srtt(self) -> Optional[float]:
        return self._srtt


class TcpStack:
    """A TCP/IP stack instance bound to one NIC ingress queue.

    ``mode`` selects the cost profile: ``"kernel"`` charges the host
    kernel-stack rates; ``"dpu"`` charges the optimized userspace-stack
    rates (used by the Network Engine on the DPU's Arm cores).
    """

    def __init__(self, env: Environment, nic: Nic, rx_queue: Store,
                 cpu: CpuCluster, costs: SoftwarePathCosts,
                 name: str = "tcp", mode: str = "kernel",
                 tracer=None):
        if mode not in ("kernel", "dpu"):
            raise ValueError(f"unknown TCP mode {mode!r}")
        self.env = env
        self.nic = nic
        self.cpu = cpu
        self.costs = costs
        self.name = name
        self.mode = mode
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if mode == "kernel":
            self._per_msg = costs.tcp_cycles_per_msg
            self._per_byte = costs.tcp_cycles_per_byte
        else:
            self._per_msg = costs.dpu_tcp_cycles_per_msg
            self._per_byte = costs.dpu_tcp_cycles_per_byte
        self._ack_cycles = 0.3 * self._per_msg
        self._listeners: Dict[int, TcpListener] = {}
        self._connections: Dict[int, TcpConnection] = {}
        self.segments_rx = Counter(f"{name}.segments_rx")
        self.segments_tx = Counter(f"{name}.segments_tx")
        # Ingress is a tap on the rx queue: frames dispatch at the
        # instant the NIC delivers them (same simulated time a parked
        # dispatcher process would resume, minus the queue round trip
        # and the process).
        rx_queue.set_tap(
            lambda frame: frame.get("proto") == "tcp",
            self._dispatch_frame,
        )
        # Control frames (ACKs, SYN-ACKs) are queued and sent by one
        # dedicated process instead of spawning a process per frame;
        # the NIC TX serializer imposed FIFO order anyway.
        self._ctrl_queue: Store = Store(env, name=f"{name}.ctrl")
        self._ctrl_proc = env.process(
            self._ctrl_loop(), name=f"{name}-ctrl"
        )
        # Receive-side CPU work is accumulated and drained by a pool of
        # softirq worker processes (one per core, mirroring how a real
        # kernel spreads softirq work) instead of one process per
        # frame.  The busy-time integral charged is identical.
        self._pending_cycles = 0.0
        self._softirq_idle: deque = deque()
        self._softirq_procs = [
            env.process(self._softirq_loop(), name=f"{name}-softirq{i}")
            for i in range(cpu.cores)
        ]

    # -- public API -----------------------------------------------------------

    @property
    def address(self) -> Optional[str]:
        """This stack's fabric address (None on point-to-point wires)."""
        return self.nic.address

    def listen(self, port: int) -> TcpListener:
        """Open a passive socket on ``port``."""
        if port in self._listeners:
            raise NetworkError(f"port {port} already in use")
        listener = TcpListener(self, port)
        self._listeners[port] = listener
        return listener

    def connect(self, port: int, remote: Optional[str] = None,
                timeout_s: Optional[float] = None):
        """Actively open a connection to ``port`` (generator).

        On a switched fabric, ``remote`` names the destination server;
        on a point-to-point wire it may be omitted.  ``timeout_s``
        bounds total establishment time: a blackholed peer raises
        :class:`DeadlineExceededError` once the budget is spent,
        instead of grinding through the full SYN retry schedule.
        """
        cid = next(_conn_ids)
        connection = TcpConnection(self, cid, port, remote=remote)
        self._connections[cid] = connection
        established = self.env.event()
        connection._established = established
        syn = {"proto": "tcp", "kind": "syn", "cid": cid, "port": port,
               "dst": remote, "src": self.address}
        # SYN retransmission with exponential backoff (capped at
        # _MAX_RTO): connection setup must survive a lossy link too.
        syn_timeout = _INIT_RTO
        started = self.env.now
        for _attempt in range(8):
            yield from self._charge_cycles(self._per_msg)
            yield from self._send_frame(syn, _HEADER_BYTES)
            wait_s = syn_timeout
            if timeout_s is not None:
                remaining = timeout_s - (self.env.now - started)
                if remaining <= 0:
                    break
                wait_s = min(wait_s, remaining)
            deadline = self.env.timeout(wait_s)
            yield self.env.any_of([established, deadline])
            if established.triggered:
                return connection
            if timeout_s is not None and \
                    self.env.now - started >= timeout_s:
                break
            syn_timeout = min(syn_timeout * 2, _MAX_RTO)
        if timeout_s is not None:
            raise DeadlineExceededError(
                f"connection to port {port} not established within "
                f"{timeout_s}s",
                deadline_s=timeout_s,
            )
        raise NetworkError(
            f"connection to port {port} timed out (SYN retries "
            "exhausted)"
        )

    # -- frame processing -------------------------------------------------------

    def _dispatch_frame(self, frame: dict) -> None:
        self.segments_rx.add(1)
        kind = frame["kind"]
        if kind == "data":
            self._charge_async(
                self._per_msg + self._per_byte * frame["len"]
            )
            connection = self._connections.get(frame["cid"])
            if connection is not None:
                connection._on_data(frame)
        elif kind == "ack":
            self._charge_async(self._ack_cycles)
            connection = self._connections.get(frame["cid"])
            if connection is not None:
                connection._on_ack(frame)
        elif kind == "syn":
            self._charge_async(self._per_msg)
            self._on_syn(frame)
        elif kind == "synack":
            self._charge_async(self._per_msg)
            connection = self._connections.get(frame["cid"])
            if connection is not None and hasattr(
                    connection, "_established"):
                if not connection._established.triggered:
                    connection._established.succeed()
        elif kind == "fin":
            connection = self._connections.get(frame["cid"])
            if connection is not None:
                connection.closed = True

    def _on_syn(self, frame: dict) -> None:
        listener = self._listeners.get(frame["port"])
        if listener is None:
            return
        cid = frame["cid"]
        if cid in self._connections:
            # Duplicate SYN (our SYN-ACK was lost): just re-ACK.
            pass
        else:
            connection = TcpConnection(self, cid, frame["port"],
                                       remote=frame.get("src"))
            self._connections[cid] = connection
            listener._deliver(connection)
        synack = {"proto": "tcp", "kind": "synack", "cid": cid,
                  "port": frame["port"], "dst": frame.get("src"),
                  "src": self.address}
        self._post_ctrl(synack)

    def _post_ack(self, connection: TcpConnection) -> None:
        ack = {
            "proto": "tcp", "kind": "ack", "cid": connection.cid,
            "dst": connection.remote, "src": self.address,
            "port": connection.port, "ack": connection._rcv_next,
            "rwnd": connection._advertised_window(),
        }
        self._charge_async(self._ack_cycles)
        self._post_ctrl(ack)

    def _post_ctrl(self, frame: dict) -> None:
        # Fire-and-forget when no control frame is queued or being
        # sent (the ctrl process is parked as the queue's getter) and
        # the TX port is free — ordering among control frames is
        # preserved because any backlog forces the queue path.
        queue = self._ctrl_queue
        if (not queue.items and queue._getters
                and self.nic.try_transmit(frame, _HEADER_BYTES)):
            self.segments_tx.add(1)
            return
        queue.put(frame)

    def _ctrl_loop(self):
        queue = self._ctrl_queue
        while True:
            frame = yield queue.get()
            # Coalesce every control frame queued at this instant into
            # one NIC burst (the ctrl queue is unbounded, so popping
            # directly never strands a blocked putter).
            frames = [(frame, _HEADER_BYTES)]
            items = queue.items
            while items and len(frames) < _MAX_BURST:
                frames.append((items.popleft(), _HEADER_BYTES))
            self.segments_tx.add(len(frames))
            yield from self.nic.transmit_batch(frames)

    def _send_frame(self, frame: dict, wire_bytes: int):
        self.segments_tx.add(1)
        yield from self.nic.transmit(frame, wire_bytes)

    # -- CPU charging ------------------------------------------------------------

    def _charge_tx(self, payload_bytes: int):
        yield from self._charge_cycles(
            self._per_msg + self._per_byte * payload_bytes
        )

    def _charge_cycles(self, cycles: float):
        # A crashed stack core (fault window on the owning cluster)
        # stalls the data path until the core returns — connections
        # survive the outage instead of dying mid-transfer.
        while True:
            try:
                yield from self.cpu.execute(cycles)
                return
            except FaultInjectedError:
                yield self.env.timeout(_MIN_RTO)

    def _charge_async(self, cycles: float) -> None:
        # Fast path: with no fault injector, a free core, and no work
        # already queued, the charge is one eventless reservation —
        # the core is busy for exactly the burn interval but no
        # scheduler entry exists unless someone queues behind it.
        # Runs with an injector keep the worker path so fault
        # semantics (a downed core drops the batch, a degraded one
        # stretches it) are untouched.
        if self._pending_cycles <= 0.0 and self.cpu.charge_async(cycles):
            return
        self._pending_cycles += cycles
        idle = self._softirq_idle
        if idle:
            # Wake exactly one idle worker; busy workers re-check the
            # accumulator when their current batch finishes.
            idle.popleft().succeed()

    def _softirq_loop(self):
        env = self.env
        while True:
            if self._pending_cycles <= 0.0:
                kick = env.event()
                self._softirq_idle.append(kick)
                yield kick
                continue
            cycles = self._pending_cycles
            self._pending_cycles = 0.0
            try:
                yield from self.cpu.execute(cycles)
            except FaultInjectedError:
                pass    # softirq work lost while the core was down
