"""Units and formatting helpers shared across the library.

Conventions used everywhere in this repository:

* time is in **seconds** (simulated),
* data sizes are in **bytes**,
* rates are **bytes/second** or **bits/second** (named explicitly),
* CPU work is in **cycles**; a "core" is one hardware thread.
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "KiB", "MiB", "GiB",
    "KHZ", "MHZ", "GHZ",
    "Kbps", "Mbps", "Gbps",
    "US", "MS",
    "PAGE_SIZE",
    "bits_to_bytes", "bytes_to_bits",
    "fmt_bytes", "fmt_time", "fmt_rate",
]

# Decimal (storage/network vendor) units.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary (memory) units.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

# Frequencies (Hz).
KHZ = 1_000
MHZ = 1_000_000
GHZ = 1_000_000_000

# Network rates (bits per second).
Kbps = 1_000
Mbps = 1_000_000
Gbps = 1_000_000_000

# Time (seconds).
US = 1e-6
MS = 1e-3

#: The paper's page size for all storage and network micro-benchmarks.
PAGE_SIZE = 8 * KiB


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count (or bit rate) to bytes."""
    return bits / 8.0


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count (or byte rate) to bits."""
    return nbytes * 8.0


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, binary units."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def fmt_rate(bytes_per_second: float) -> str:
    """Human-readable throughput."""
    return f"{fmt_bytes(bytes_per_second)}/s"
