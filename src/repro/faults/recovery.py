"""Recovery machinery: retries, deadlines, and failover.

Three primitives, all operating in *simulated* time:

* :class:`RetryPolicy` — exponential backoff with deterministic
  jitter and a total-delay budget.  Use via :func:`retrying`, a
  generator wrapper that re-runs an attempt generator on retryable
  errors and raises :class:`RetriesExhaustedError` (attempt count +
  last cause) when the policy gives up;
* :class:`CircuitBreaker` — the traffic director's failover switch: a
  sliding-window failure-rate detector with closed → open →
  half-open states.  When it opens, DPU-steered work fails over to
  the host path (``on_open``/``on_close`` callbacks let
  :class:`~repro.core.traffic.TrafficDirector` reprogram the NIC flow
  table);
* per-request deadlines live on
  :class:`~repro.core.requests.AsyncRequest` (``deadline_s=``), which
  fails the request with :class:`DeadlineExceededError`.

Determinism: backoff jitter is derived from ``crc32(seed:attempt)``,
not a global RNG, so a retried operation sleeps the same amount in
every run.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from ..errors import (
    FaultInjectedError,
    ReproError,
    RetriesExhaustedError,
)
from ..obs.trace import NULL_TRACER
from ..sim.stats import Counter

__all__ = ["RetryPolicy", "retrying", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Budget-capped exponential backoff in sim time."""

    max_attempts: int = 4
    base_delay_s: float = 100e-6
    multiplier: float = 2.0
    max_delay_s: float = 5e-3
    jitter: float = 0.2             # +/- fraction of the raw delay
    budget_s: float = float("inf")  # total backoff-sleep budget
    retryable: Tuple[Type[BaseException], ...] = (FaultInjectedError,)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")

    def delay_s(self, attempt: int, seed: int = 0) -> float:
        """Backoff before retry number ``attempt`` (0-based).

        Deterministic: the jitter offset is a pure function of
        ``(seed, attempt)``, so replays sleep identically.
        """
        raw = min(self.base_delay_s * self.multiplier ** attempt,
                  self.max_delay_s)
        if not self.jitter or raw == 0:
            return raw
        stream = zlib.crc32(f"{seed}:{attempt}".encode())
        unit = (stream % 10_000) / 10_000.0          # [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether the policy retries after ``exc``."""
        return isinstance(exc, self.retryable)


def retrying(env, policy: RetryPolicy, attempt: Callable,
             seed: int = 0, retries: Optional[Counter] = None,
             tracer=NULL_TRACER):
    """Run ``attempt`` under ``policy`` (generator).

    ``attempt`` is a zero-argument callable returning a fresh attempt
    generator; its return value becomes this generator's return value.
    Retryable failures back off (sim-time sleep) and re-run; the
    policy's attempt cap or delay budget exhausting raises
    :class:`RetriesExhaustedError` carrying the attempt count and the
    last underlying cause.  Non-retryable errors propagate untouched.

    With a real ``tracer``, each try is wrapped in a
    ``retry.attempt`` span (closed even when the try fails or the
    policy gives up) and every backoff sleep leaves a
    ``retry.backoff`` instant — so a retry storm is legible in the
    trace instead of looking like one long opaque request.
    """
    attempts = 0
    slept = 0.0
    while True:
        span = tracer.span("retry.attempt", category="fault",
                           attempt=attempts)
        try:
            result = yield from attempt()
        except ReproError as exc:
            span.annotate(error=type(exc).__name__)
            span.finish()
            if not policy.is_retryable(exc):
                raise
            attempts += 1
            if attempts >= policy.max_attempts:
                raise RetriesExhaustedError(
                    f"gave up after {attempts} attempts: {exc}",
                    attempts=attempts, last_cause=exc,
                )
            delay = policy.delay_s(attempts - 1, seed=seed)
            if slept + delay > policy.budget_s:
                raise RetriesExhaustedError(
                    f"retry budget {policy.budget_s}s exhausted "
                    f"after {attempts} attempts: {exc}",
                    attempts=attempts, last_cause=exc,
                )
            slept += delay
            if retries is not None:
                retries.add(1)
            tracer.instant("retry.backoff", category="fault",
                           attempt=attempts, delay_s=delay)
            if delay > 0:
                yield env.timeout(delay)
        else:
            span.finish()
            return result


class CircuitBreaker:
    """Sliding-window failure-rate breaker with half-open probes.

    States:

    * ``closed`` — requests flow; outcomes are recorded into a
      sliding window of the last ``window_s`` seconds;
    * ``open`` — tripped: :meth:`allow` returns False until
      ``reset_timeout_s`` has elapsed (callers take the fallback
      path — for the traffic director, the host);
    * ``half_open`` — one probe request is allowed through; success
      closes the breaker, failure re-opens it.

    The trip condition is ``failures >= min_failures`` AND
    ``failure_rate >= rate_threshold`` within the window, so a single
    blip on an idle path cannot trip it.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, env, window_s: float = 2e-3,
                 min_failures: int = 5,
                 rate_threshold: float = 0.5,
                 reset_timeout_s: float = 1e-3,
                 on_open: Optional[Callable] = None,
                 on_close: Optional[Callable] = None,
                 name: str = "breaker"):
        if window_s <= 0 or reset_timeout_s <= 0:
            raise ValueError("window and reset timeout must be positive")
        if not 0.0 < rate_threshold <= 1.0:
            raise ValueError("rate threshold must be in (0, 1]")
        self.env = env
        self.window_s = window_s
        self.min_failures = min_failures
        self.rate_threshold = rate_threshold
        self.reset_timeout_s = reset_timeout_s
        self.on_open = on_open
        self.on_close = on_close
        self.name = name
        self.state = self.CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self._events: deque = deque()      # (time, ok) outcomes
        self.trips = Counter(f"{name}.trips")
        self.rejections = Counter(f"{name}.rejections")
        self.probes = Counter(f"{name}.probes")

    # -- window bookkeeping ----------------------------------------------

    def _expire(self) -> None:
        horizon = self.env.now - self.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def failure_rate(self) -> float:
        """Failure fraction inside the current window (0.0 if empty)."""
        self._expire()
        if not self._events:
            return 0.0
        failures = sum(1 for _, ok in self._events if not ok)
        return failures / len(self._events)

    # -- state machine -----------------------------------------------------

    def allow(self) -> bool:
        """Whether the protected (DPU) path may serve this request."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self.env.now - self._opened_at >= self.reset_timeout_s:
                self.state = self.HALF_OPEN
                self._probe_inflight = False
            else:
                self.rejections.add(1)
                return False
        # half-open: admit exactly one probe at a time
        if self._probe_inflight:
            self.rejections.add(1)
            return False
        self._probe_inflight = True
        self.probes.add(1)
        return True

    def record_success(self) -> None:
        """Report a protected-path success."""
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self._events.clear()
            self._probe_inflight = False
            if self.on_close is not None:
                self.on_close()
            return
        self._events.append((self.env.now, True))
        self._expire()

    def record_failure(self) -> None:
        """Report a protected-path failure; may trip the breaker."""
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._events.append((self.env.now, False))
        self._expire()
        if self.state != self.CLOSED:
            return
        failures = sum(1 for _, ok in self._events if not ok)
        if failures >= self.min_failures and \
                self.failure_rate() >= self.rate_threshold:
            self._trip()

    def _trip(self) -> None:
        previously = self.state
        self.state = self.OPEN
        self._opened_at = self.env.now
        self._probe_inflight = False
        self.trips.add(1)
        if previously != self.OPEN and self.on_open is not None:
            self.on_open()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name}: {self.state}, "
                f"rate={self.failure_rate():.2f}, "
                f"trips={int(self.trips.value)})")
