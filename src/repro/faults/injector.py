"""The runtime fault injector the hardware hooks consult.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a simulation.  Components that accept an ``injector=`` keyword call
one of three entry points:

* ``yield from injector.perturb(site)`` — per-operation faults: adds
  scheduled delay, then raises :class:`FaultInjectedError` when an
  error window's roll hits.  Generator, so it composes with the
  device's own timing;
* ``injector.is_down(site)`` — state check for ``down`` windows (link
  flaps, crashed Arm cores, offline ASICs, stalled rings);
* ``injector.should_drop(site)`` / ``injector.slowdown(site)`` —
  per-frame drop rolls and CPU stretch factors.

Determinism: every concrete site gets its own ``random.Random`` seeded
from ``crc32(f"{plan.seed}:{site}")``, so (a) the same run replays the
same decisions, and (b) adding a window for one site never perturbs
another site's roll sequence.

``NULL_INJECTOR`` is the shared no-op used when fault injection is
off; hooks guard with ``if injector is not None`` instead, so the null
object only serves call sites that want unconditional calls.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Optional

from ..errors import FaultInjectedError
from ..obs.trace import NULL_TRACER
from ..sim.stats import Counter

from .plan import FaultPlan, FaultWindow

__all__ = ["FaultInjector", "NullInjector", "NULL_INJECTOR"]


class FaultInjector:
    """Deterministic per-site fault decisions against one plan."""

    def __init__(self, env, plan: Optional[FaultPlan] = None,
                 tracer=None, name: str = "faults"):
        self.env = env
        self.plan = plan or FaultPlan()
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rngs: Dict[str, random.Random] = {}
        #: site -> windows cache (site universe is small and stable)
        self._site_windows: Dict[str, list] = {}
        self.injected = Counter(f"{name}.injected")
        self.errors = Counter(f"{name}.errors")
        self.delays = Counter(f"{name}.delays")
        self.drops = Counter(f"{name}.drops")
        self.downs = Counter(f"{name}.down_hits")
        #: per-site injection counts for reports/tests
        self.by_site: Dict[str, int] = {}

    # -- plumbing ---------------------------------------------------------

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            stream = zlib.crc32(f"{self.plan.seed}:{site}".encode())
            rng = random.Random(stream)
            self._rngs[site] = rng
        return rng

    def _windows(self, site: str) -> list:
        windows = self._site_windows.get(site)
        if windows is None:
            windows = self.plan.windows_for(site)
            self._site_windows[site] = windows
        return windows

    def _active(self, site: str, kind: str):
        now = self.env.now
        for window in self._windows(site):
            if window.kind == kind and window.active(now):
                yield window

    def _record(self, site: str, kind: str, window: FaultWindow) -> None:
        self.injected.add(1)
        self.by_site[site] = self.by_site.get(site, 0) + 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fault.injected", category="faults", site=site,
                kind=kind, window_start_s=window.start_s,
            )

    # -- the hook API ------------------------------------------------------

    def perturb(self, site: str):
        """Per-operation faults for ``site`` (generator).

        Applies every active ``delay`` window whose roll hits, then
        raises :class:`FaultInjectedError` if an active ``error``
        window's roll hits.  Call where the device would do the work.
        """
        rng = self._rng(site)
        for window in self._active(site, "delay"):
            if window.probability >= 1.0 or \
                    rng.random() < window.probability:
                self.delays.add(1)
                self._record(site, "delay", window)
                yield self.env.timeout(window.magnitude)
        for window in self._active(site, "error"):
            if window.probability >= 1.0 or \
                    rng.random() < window.probability:
                self.errors.add(1)
                self._record(site, "error", window)
                raise FaultInjectedError(
                    f"injected {site} error at t={self.env.now:.6f}",
                    site=site, kind="error",
                )

    def is_down(self, site: str) -> bool:
        """Whether a ``down`` window currently covers ``site``."""
        for window in self._active(site, "down"):
            self.downs.add(1)
            self._record(site, "down", window)
            return True
        return False

    def check_up(self, site: str) -> None:
        """Raise :class:`FaultInjectedError` when ``site`` is down."""
        if self.is_down(site):
            raise FaultInjectedError(
                f"{site} is down at t={self.env.now:.6f}",
                site=site, kind="down",
            )

    def should_drop(self, site: str) -> bool:
        """Per-frame decision for wire sites: drop this frame?

        ``down`` windows drop everything; ``drop`` windows roll the
        site RNG against their probability.
        """
        for window in self._active(site, "down"):
            self.drops.add(1)
            self._record(site, "down", window)
            return True
        rng = self._rng(site)
        for window in self._active(site, "drop"):
            if window.probability >= 1.0 or \
                    rng.random() < window.probability:
                self.drops.add(1)
                self._record(site, "drop", window)
                return True
        return False

    def slowdown(self, site: str) -> float:
        """The combined stretch factor of active ``slow`` windows."""
        factor = 1.0
        for window in self._active(site, "slow"):
            factor *= window.magnitude
        return factor

    # -- installation ------------------------------------------------------

    def install(self, server) -> None:
        """Attach this injector to a server's fault-capable hardware.

        Covers the host and DPU CPU clusters, every SSD, the DPU's
        accelerators, and (when the NIC is wired) the wire.  Engines
        built later (rings, journals) accept ``injector=`` directly.
        """
        for ssd in server.ssds:
            ssd.injector = self
        server.host_cpu.injector = self
        if server.dpu is not None:
            dpu = server.dpu
            dpu.cpu.injector = self
            for accelerator in dpu.accelerators.values():
                accelerator.injector = self
        if getattr(server.nic, "wire", None) is not None:
            server.nic.wire.injector = self

    def counts(self) -> Dict[str, int]:
        """Per-site injection totals (copy; stable key order)."""
        return {site: self.by_site[site]
                for site in sorted(self.by_site)}

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.plan.seed}, "
                f"{len(self.plan.windows)} windows, "
                f"{int(self.injected.value)} injected)")


class NullInjector:
    """A no-op injector: never faults, never rolls, costs nothing."""

    def perturb(self, site: str):
        """No-op generator: adds no delay, raises nothing."""
        return
        yield  # pragma: no cover — makes this a generator function

    def is_down(self, site: str) -> bool:
        """Always up."""
        return False

    def check_up(self, site: str) -> None:
        """Never raises."""
        return None

    def should_drop(self, site: str) -> bool:
        """Never drops."""
        return False

    def slowdown(self, site: str) -> float:
        """Unit stretch: no slowdown."""
        return 1.0

    def __repr__(self) -> str:
        return "NullInjector()"


NULL_INJECTOR = NullInjector()
