"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultWindow` entries plus a
seed.  Each window names a *site pattern* (fnmatch-style, matched
against the dotted site strings the hardware hooks report), a fault
*kind*, a sim-time interval, and a per-operation probability.

Site naming convention (what the built-in hooks emit):

====================================  =================================
site                                  emitted by
====================================  =================================
``ssd.<device>.read`` / ``.write``    :class:`~repro.hardware.ssd.Ssd`
``wire``                              :class:`~repro.hardware.nic.Wire`
``cpu.<cluster>``                     :class:`~repro.hardware.cpu.CpuCluster`
``accel.<dpu>.<kind>``                :class:`~repro.hardware.accelerator.Accelerator`
``ring.<name>``                       :class:`~repro.netstack.ringbuffer.RingBuffer`
``journal.<name>``                    :class:`~repro.fs.journal.Journal`
====================================  =================================

Fault kinds:

``error``   the operation raises :class:`FaultInjectedError`
``delay``   the operation takes ``magnitude`` extra seconds
``drop``    the frame is silently dropped (wire sites)
``down``    the component is unavailable for the whole window
            (link flap, accelerator offline, Arm-core crash,
            ring stall — state, not a per-op roll)
``slow``    work is stretched by ``magnitude``x (CPU slowdown)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import List, Tuple

__all__ = ["FaultWindow", "FaultPlan", "KINDS", "default_fault_plan"]

KINDS = ("error", "delay", "drop", "down", "slow")


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: a site pattern active over a sim interval."""

    site: str                       # fnmatch pattern over site names
    kind: str                       # one of KINDS
    start_s: float = 0.0
    end_s: float = float("inf")
    probability: float = 1.0        # per-op chance inside the window
    magnitude: float = 0.0          # delay seconds / slowdown factor

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {KINDS}"
            )
        if self.end_s < self.start_s:
            raise ValueError(
                f"window ends before it starts: "
                f"[{self.start_s}, {self.end_s}]"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability {self.probability} outside [0, 1]"
            )
        if self.kind == "slow" and self.magnitude < 1.0:
            raise ValueError("slowdown magnitude must be >= 1.0")
        if self.kind == "delay" and self.magnitude < 0.0:
            raise ValueError("delay magnitude cannot be negative")

    def active(self, now: float) -> bool:
        """Whether the window covers simulated time ``now``."""
        return self.start_s <= now < self.end_s

    def matches(self, site: str) -> bool:
        """Whether this window applies to a concrete ``site``."""
        return fnmatchcase(site, self.site)


@dataclass
class FaultPlan:
    """A seeded schedule of fault windows.

    The seed feeds the injector's per-site RNG streams; two runs with
    the same plan therefore make byte-identical fault decisions.
    """

    seed: int = 0
    windows: List[FaultWindow] = field(default_factory=list)

    def add(self, site: str, kind: str, start_s: float = 0.0,
            end_s: float = float("inf"), probability: float = 1.0,
            magnitude: float = 0.0) -> "FaultPlan":
        """Append a window (chainable)."""
        self.windows.append(FaultWindow(site, kind, start_s, end_s,
                                        probability, magnitude))
        return self

    # -- convenience builders (the fault families the tentpole names) ----

    def ssd_errors(self, probability: float, start_s: float = 0.0,
                   end_s: float = float("inf"),
                   site: str = "ssd.*") -> "FaultPlan":
        """Per-I/O read/write failures on matching SSDs."""
        return self.add(site, "error", start_s, end_s, probability)

    def ssd_latency_spike(self, extra_s: float, probability: float = 1.0,
                          start_s: float = 0.0,
                          end_s: float = float("inf"),
                          site: str = "ssd.*") -> "FaultPlan":
        """Extra per-I/O latency on matching SSDs."""
        return self.add(site, "delay", start_s, end_s, probability,
                        magnitude=extra_s)

    def packet_loss(self, probability: float, start_s: float = 0.0,
                    end_s: float = float("inf"),
                    site: str = "wire*") -> "FaultPlan":
        """Per-frame drops on matching wires."""
        return self.add(site, "drop", start_s, end_s, probability)

    def link_flap(self, start_s: float, end_s: float,
                  site: str = "wire*") -> "FaultPlan":
        """A full link outage: every frame dropped in the window."""
        return self.add(site, "down", start_s, end_s)

    def cpu_crash(self, start_s: float, end_s: float,
                  site: str = "cpu.*.dpu.cpu") -> "FaultPlan":
        """Arm-core crash: execution raises for the whole window."""
        return self.add(site, "down", start_s, end_s)

    def cpu_slowdown(self, factor: float, start_s: float = 0.0,
                     end_s: float = float("inf"),
                     site: str = "cpu.*.dpu.cpu") -> "FaultPlan":
        """Arm-core slowdown: cycles stretched by ``factor``."""
        return self.add(site, "slow", start_s, end_s,
                        magnitude=factor)

    def accelerator_down(self, kind: str, start_s: float,
                         end_s: float) -> "FaultPlan":
        """An ASIC of ``kind`` unavailable for the window."""
        return self.add(f"accel.*.{kind}", "down", start_s, end_s)

    def ring_stall(self, start_s: float, end_s: float,
                   site: str = "ring.*") -> "FaultPlan":
        """Ring-buffer stall: pushes fail for the whole window."""
        return self.add(site, "down", start_s, end_s)

    # -- introspection ---------------------------------------------------

    def windows_for(self, site: str) -> List[FaultWindow]:
        """Windows whose pattern matches a concrete ``site``."""
        return [w for w in self.windows if w.matches(site)]

    def span(self) -> Tuple[float, float]:
        """The [earliest start, latest finite end] of the plan."""
        if not self.windows:
            return (0.0, 0.0)
        starts = [w.start_s for w in self.windows]
        ends = [w.end_s for w in self.windows
                if w.end_s != float("inf")]
        return (min(starts), max(ends) if ends else float("inf"))

    def describe(self) -> str:
        """A human-readable schedule table."""
        lines = [f"fault plan (seed={self.seed}, "
                 f"{len(self.windows)} windows):"]
        for w in sorted(self.windows,
                        key=lambda w: (w.start_s, w.site, w.kind)):
            end = "inf" if w.end_s == float("inf") else f"{w.end_s:g}"
            extra = ""
            if w.kind in ("delay", "slow"):
                extra = f" x{w.magnitude:g}" if w.kind == "slow" \
                    else f" +{w.magnitude:g}s"
            lines.append(
                f"  [{w.start_s:g}, {end}) {w.site:28s} "
                f"{w.kind:5s} p={w.probability:g}{extra}"
            )
        return "\n".join(lines)


def default_fault_plan(seed: int = 0,
                       duration_s: float = 0.01) -> FaultPlan:
    """The availability experiment's reference chaos schedule.

    Scaled to a ``duration_s``-long run: transient SSD errors and a
    latency-spike window, a mid-run DPU Arm-core crash followed by a
    slowdown (the recovering core), a link flap, an accelerator
    outage, and a short ring stall.  Every family the tentpole names
    is represented, so recovery machinery gets exercised end to end.
    """
    plan = FaultPlan(seed=seed)
    # Transient SSD read errors across the middle of the run.
    plan.ssd_errors(0.08, start_s=0.1 * duration_s,
                    end_s=0.9 * duration_s)
    # A latency spike burst (firmware GC pause flavour).
    plan.ssd_latency_spike(150e-6, probability=0.3,
                           start_s=0.2 * duration_s,
                           end_s=0.35 * duration_s)
    # The DPU's Arm cores crash for a stretch, then run degraded.
    plan.cpu_crash(start_s=0.4 * duration_s, end_s=0.55 * duration_s)
    plan.cpu_slowdown(3.0, start_s=0.55 * duration_s,
                      end_s=0.7 * duration_s)
    # A link flap plus background packet loss.
    plan.link_flap(start_s=0.75 * duration_s, end_s=0.78 * duration_s)
    plan.packet_loss(0.01, start_s=0.0, end_s=duration_s)
    # Compression ASIC offline for a window.
    plan.accelerator_down("compression", start_s=0.3 * duration_s,
                          end_s=0.5 * duration_s)
    # A short submission-ring stall.
    plan.ring_stall(start_s=0.6 * duration_s,
                    end_s=0.62 * duration_s, site="ring.*.sq")
    return plan
