"""Deterministic fault injection and recovery for the three engines.

The paper's traffic director (Section 8) exists so requests can be
steered between the DPU and host paths; steering only matters when a
path can *fail*.  This package supplies the failure side and the
recovery side:

* :mod:`repro.faults.plan` — :class:`FaultWindow` / :class:`FaultPlan`:
  a seeded, declarative schedule of faults in simulated time (SSD
  errors and latency spikes, NIC loss and link flaps, DPU Arm
  crash/slowdown, accelerator unavailability, ring stalls);
* :mod:`repro.faults.injector` — :class:`FaultInjector`: the runtime
  that hardware/netstack/fs hooks consult.  Per-site seeded RNG
  streams keep every fault decision reproducible and independent
  across sites;
* :mod:`repro.faults.recovery` — :class:`RetryPolicy` (sim-time
  exponential backoff with deterministic jitter, budget-capped),
  :class:`CircuitBreaker` (DPU→host failover), and the
  :func:`retrying` generator wrapper.

Determinism guarantee: with a fixed plan seed, the same simulation
makes exactly the same fault decisions — see ``docs/ROBUSTNESS.md``.
"""

from .injector import FaultInjector, NULL_INJECTOR
from .plan import FaultPlan, FaultWindow, default_fault_plan
from .recovery import CircuitBreaker, RetryPolicy, retrying

__all__ = [
    "FaultWindow",
    "FaultPlan",
    "default_fault_plan",
    "FaultInjector",
    "NULL_INJECTOR",
    "RetryPolicy",
    "retrying",
    "CircuitBreaker",
]
