"""The paper's quantitative claims, as data.

Each :class:`Claim` encodes one checkable statement from the DPDPU
paper (F1–F3, F6–F8, S9) — plus the availability claims (AV) of the
fault-injection layer — against the benchmark artifact format of
:mod:`repro.obs.artifact`: which experiment and part it reads, the
check kind, and its parameters.  ``python -m repro.bench --check
ARTIFACT.json`` evaluates the whole registry and reports
PASS / FAIL / SKIP per claim with measured-vs-expected values — the
declarative twin of the shape assertions the pytest benchmarks make.

A claim SKIPs when its experiment is absent from the artifact (a
subset run); a present experiment with a missing part or series is a
FAIL — that is schema drift, not a smaller run.

Check kinds (all selectors name ``part`` plus kind-specific fields):

``monotonic``     sweep series never drops by more than ``tolerance``
``linear``        least-squares fit of a sweep series has R² ≥ floor
``dominates``     winner ≥ ``min_factor`` × loser at every sweep row
``ratio_at``      numerator / denominator ≥ ``min_factor`` at one row
``band``          a metric (table / nested / sweep-at-row) in [lo, hi]
``order``         metric ``smaller`` < metric ``larger`` (F8 ordering)
``rel_close``     two sweep series within rel_tol + abs_tol, row-wise
``nested_ratio``  metric ratio between two nested configs ≥ factor
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Claim",
    "ClaimResult",
    "CLAIMS",
    "evaluate_claim",
    "evaluate_all",
    "render_claim_report",
]

PASS, FAIL, SKIP = "PASS", "FAIL", "SKIP"


@dataclass(frozen=True)
class Claim:
    """One declarative paper claim."""

    id: str                      # e.g. "F1.asic_order_of_magnitude"
    experiment: str              # artifact experiment key ("fig1")
    description: str             # the paper's statement, abbreviated
    kind: str                    # check kind (module docstring)
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ClaimResult:
    """The verdict for one claim against one artifact."""

    claim: Claim
    status: str                  # PASS / FAIL / SKIP
    measured: str = ""
    expected: str = ""
    detail: str = ""


# -- the registry -----------------------------------------------------------

def _c(id, experiment, description, kind, **params) -> Claim:
    return Claim(id, experiment, description, kind, params)


CLAIMS: Tuple[Claim, ...] = (
    # F1 — compression on different hardware
    _c("F1.latency_grows", "fig1",
       "DEFLATE latency grows with data size on every device",
       "monotonic", part="compression",
       series=["epyc_s", "arm_s", "bf2_asic_s"]),
    _c("F1.epyc_beats_arm", "fig1",
       "the more advanced EPYC CPU outperforms the Arm CPU",
       "dominates", part="compression",
       winner="arm_s", loser="epyc_s", min_factor=1.5),
    _c("F1.asic_order_of_magnitude", "fig1",
       "BF-2 compression ASIC ~10x faster than a CPU core",
       "ratio_at", part="compression",
       numerator="epyc_s", denominator="bf2_asic_s",
       row="last", min_factor=8.0),
    _c("F1.natural_text_ratio", "fig1",
       "real DEFLATE compresses natural text at a natural ratio",
       "band", part="real_bytes_checkpoint",
       metric="ratio", lo=2.0, hi=6.0),

    # F2 — CPU consumption of storage access
    _c("F2.linear_with_rate", "fig2",
       "host CPU grows linearly with 8 KiB-page read throughput",
       "linear", part="storage_cpu", series="kernel_cores",
       r2_floor=0.98),
    _c("F2.cores_at_450k", "fig2",
       "~2.7 host cores at 450K pages/s on the kernel path",
       "band", part="storage_cpu", series="kernel_cores",
       row=450, lo=2.4, hi=3.0),
    _c("F2.io_uring_similar", "fig2",
       "io_uring consumes a similar number of cores",
       "rel_close", part="storage_cpu",
       a="io_uring_cores", b="kernel_cores",
       rel_tol=0.25, abs_tol=0.05),
    _c("F2.se_frees_host", "fig2",
       "the offloaded SE path serves the load with >10x fewer "
       "host cores",
       "ratio_at", part="storage_cpu",
       numerator="kernel_cores", denominator="dpdpu_host_cores",
       row="last", min_factor=10.0),

    # F3 — CPU consumption of TCP
    _c("F3.linear_with_bandwidth", "fig3",
       "kernel TCP host cost grows linearly with offered bandwidth",
       "linear", part="network_cpu", series="kernel_tx_cores",
       r2_floor=0.98),
    _c("F3.multicore_at_high_bw", "fig3",
       "multiple host cores burned near 100 Gbps with 8 KiB messages",
       "band", part="network_cpu", series="kernel_tx_cores",
       row="last", lo=4.0, hi=math.inf),
    _c("F3.ne_frees_host", "fig3",
       "NE offload leaves only ring work on the host (>5x fewer "
       "cores at every point)",
       "dominates", part="network_cpu",
       winner="kernel_tx_cores", loser="ne_host_cores",
       min_factor=5.0),

    # F6 — the read-compress-send sproc
    _c("F6.all_pages_delivered", "fig6",
       "every configuration delivers every page to the client",
       "band", part="sproc", config="*",
       metric="pages_received", lo=160.0, hi=160.0),
    _c("F6.specified_runs_on_asic", "fig6",
       "specified execution runs every compression on the BF-2 ASIC",
       "band", part="sproc", config="bf2/specified",
       metric="asic_fraction", lo=1.0, hi=1.0),
    _c("F6.fallback_on_generic", "fig6",
       "without the ASIC the sproc falls back to DPU CPUs",
       "band", part="sproc", config="generic/fallback",
       metric="asic_fraction", lo=0.0, hi=0.0),
    _c("F6.asic_speedup", "fig6",
       "ASIC acceleration wins end to end by a wide margin",
       "nested_ratio", part="sproc", metric="pages_per_s",
       numerator_config="bf2/specified",
       denominator_config="generic/fallback", min_factor=4.0),
    _c("F6.scheduled_competitive", "fig6",
       "scheduled execution is at least as fast as pinning to the "
       "ASIC under a setup-dominated burst",
       "nested_ratio", part="sproc", metric="pages_per_s",
       numerator_config="bf2/scheduled",
       denominator_config="bf2/specified", min_factor=0.95),

    # F7 — DPU-optimized RDMA
    _c("F7.host_cycles_saved", "fig7",
       "NE offload cuts host cycles per RDMA op by >3x",
       "band", part="rdma", metric="host_cycles_saved_factor",
       lo=3.0, hi=math.inf),
    _c("F7.throughput_sustained", "fig7",
       "the offloaded path still sustains high op throughput",
       "band", part="rdma", metric="offloaded_ops_per_s",
       lo=500_000.0, hi=math.inf),
    _c("F7.dpu_hop_costs_latency", "fig7",
       "the DPU hop adds latency (the honest trade)",
       "order", part="rdma",
       smaller="native_latency_s", larger="offloaded_latency_s"),

    # F8 — DDS remote-read latency
    _c("F8.latency_ordering", "fig8",
       "DDS mean remote-read latency beats the host-served path",
       "order", part="dds_latency",
       smaller="dds_mean_s", larger="host_path_mean_s"),
    _c("F8.p99_ordering", "fig8",
       "the ordering holds at the tail too",
       "order", part="dds_latency",
       smaller="dds_p99_s", larger="host_path_p99_s"),
    _c("F8.double_digit_saving", "fig8",
       "a double-digit-percent latency saving",
       "band", part="dds_latency", metric="latency_saving_fraction",
       lo=0.10, hi=1.0),

    # S9 — DDS cores saved
    _c("S9.baseline_climbs", "s9",
       "baseline host cost climbs with request rate",
       "monotonic", part="pageserver",
       series="baseline_host_cores"),
    _c("S9.dds_host_stays_low", "s9",
       "DDS keeps host cores at a fraction of the baseline",
       "dominates", part="pageserver",
       winner="baseline_host_cores", loser="dds_host_cores",
       min_factor=2.0),
    _c("S9.savings_grow", "s9",
       "core savings grow with rate",
       "monotonic", part="pageserver", series="cores_saved"),
    _c("S9.tens_of_cores_at_line_rate", "s9",
       "DDS saves 10s of CPU cores per storage server at line rate",
       "band", part="pageserver",
       series="cores_saved_at_line_rate", row="last",
       lo=10.0, hi=math.inf),
    _c("S9.cheaper_at_line_rate", "s9",
       "the DDS server is cheaper than the conventional server at "
       "line rate",
       "order", part="pageserver", row="last",
       smaller="line_rate_dds_dollars_hr",
       larger="line_rate_baseline_dollars_hr"),

    # AV — availability under injected faults (robustness layer)
    _c("AV.recovery_restores_goodput", "avail",
       "retries + breaker failover restore >= 90% of fault-free "
       "goodput under the default fault plan",
       "band", part="summary", metric="recovery_goodput_fraction",
       lo=0.90, hi=1.02),
    _c("AV.unprotected_load_degrades", "avail",
       "without recovery the same fault plan visibly degrades goodput",
       "order", part="summary",
       smaller="norec_goodput_fraction",
       larger="recovery_goodput_fraction"),
    _c("AV.unprotected_errors_visible", "avail",
       "unprotected requests fail at a material rate (every fault "
       "is a typed, surfaced error — not a silent wrong result)",
       "band", part="summary", metric="norec_error_rate",
       lo=0.05, hi=1.0),
    _c("AV.recovery_errors_bounded", "avail",
       "the recovery stack keeps the client-visible error rate tiny",
       "band", part="summary", metric="recovery_error_rate",
       lo=0.0, hi=0.02),
    _c("AV.failover_engaged", "avail",
       "the circuit breaker actually fails DPU-path reads over to "
       "the host while the Arm cores are down",
       "band", part="scenarios", config="faults_recovery",
       metric="failovers", lo=1.0, hi=math.inf),
    _c("AV.blackhole_connect_bounded", "avail",
       "a connect() into a black-holed link gives up at its deadline "
       "instead of backing off forever",
       "band", part="tcp_blackhole", metric="blackhole_elapsed_s",
       lo=0.0, hi=5.5e-3),

    # SC — multi-node scale-out (cluster layer)
    _c("SC.goodput_scales", "scale",
       "weak-scaling goodput never regresses as nodes are added",
       "monotonic", part="goodput", series="goodput_ops_per_s"),
    _c("SC.near_linear_speedup", "scale",
       "8 nodes serve close to 8x one node's goodput (sharding and "
       "DPU-side routing do not serialize the cluster)",
       "band", part="goodput", series="speedup", row="last",
       lo=6.0, hi=8.8),
    _c("SC.host_cores_stay_flat", "scale",
       "per-node host cores stay near zero at every cluster size — "
       "the DDS offload survives the move to a sharded cluster",
       "band", part="goodput", series="host_cores_per_node",
       row="last", lo=0.0, hi=0.5),
    _c("SC.routing_stays_bounded", "scale",
       "the DPU routes a bounded fraction of requests (stale "
       "clients exist, but routing never dominates)",
       "band", part="goodput", series="routed_fraction", row="last",
       lo=0.03, hi=0.25),
    _c("SC.tco_dpu_wins_at_scale", "scale",
       "an N-node DDS cluster is cheaper than an N-node host-served "
       "cluster at every N (Fig. 9 extended to the fleet)",
       "dominates", part="tco", winner="baseline_cluster_dollars_hr",
       loser="dds_cluster_dollars_hr", min_factor=1.3),
    _c("SC.placement_balanced", "scale",
       "consistent hashing keeps the most-loaded node within a "
       "small factor of the mean shard count",
       "band", part="sharding", metric="balance_factor",
       lo=1.0, hi=3.0),
    _c("SC.minimal_movement", "scale",
       "losing one of eight nodes moves only about 1/8 of the "
       "shards, and nothing else changes owner",
       "band", part="sharding", metric="moved_fraction",
       lo=0.03, hi=0.30),
    _c("SC.placement_deterministic", "scale",
       "shard placement is process-stable (crc32, no salted hash): "
       "a rebuilt map agrees shard for shard",
       "band", part="sharding", metric="deterministic",
       lo=1.0, hi=1.0),
    _c("SC.rebalance_restores_goodput", "scale",
       "migrating shards off the crashed DPU recovers most of the "
       "lost goodput vs leaving the cluster alone",
       "nested_ratio", part="rebalance", metric="ok_fraction",
       numerator_config="rebalance",
       denominator_config="norebalance", min_factor=1.2),
    _c("SC.rebalance_drains_node", "scale",
       "the rebalancer migrates every shard off the failed node "
       "within the run and retires it",
       "band", part="rebalance", config="rebalance",
       metric="node1_retired", lo=1.0, hi=1.0),
    _c("SC.rack_goodput_linear", "scale",
       "per-node goodput at 64 and 128 nodes stays within 10% of "
       "the 8-node point — weak scaling holds at rack scale",
       "band", part="rack", config="scaling",
       metric="goodput_linearity", lo=0.9, hi=1.0),
    _c("SC.rack_dpu_cores_flat", "scale",
       "per-node DPU cores are flat across the rack sweep (serving "
       "cost scales with nodes, not superlinearly)",
       "band", part="rack", config="scaling",
       metric="dpu_cores_flat_ratio", lo=1.0, hi=1.25),
    _c("SC.rack_host_cores_zero", "scale",
       "host cores stay ~zero at every rack size: DDS keeps serving "
       "DPU-side even at 128 nodes",
       "band", part="rack", config="scaling",
       metric="host_cores_per_node_max", lo=0.0, hi=0.05),
    _c("SC.rack_hybrid_engaged", "scale",
       "every rack point solved its steady mid-window analytically "
       "(the sweep is only affordable in hybrid mode)",
       "band", part="rack", config="scaling",
       metric="fluid_windows", lo=3.0, hi=math.inf),

    # PF — simulator-kernel microbenchmarks.  Rates are wall-clock
    # volatile (warn-only in regression), but these *counts* and
    # identity bits are simulated-deterministic, so they can be
    # claim-bound like any other metric.
    _c("PF.timeout_pool_reuses", "perf",
       "the Timeout freelist serves almost every allocation in the "
       "back-to-back drain workload",
       "band", part="kernel_counters", metric="pool_hit_fraction",
       lo=0.9, hi=1.0),
    _c("PF.pool_cap_zero_disables", "perf",
       "timeout_pool_cap=0 turns pooling off completely (the knob "
       "is live, not advisory)",
       "band", part="kernel_counters", metric="pool_cap0_hits",
       lo=0.0, hi=0.0),
    _c("PF.calendar_heap_identical", "perf",
       "heap-pinned and calendar-pinned schedulers fire a mixed "
       "periodic+tombstone workload in the identical total order",
       "band", part="scheduler_identity", metric="order_identical",
       lo=1.0, hi=1.0),
    _c("PF.calendar_engages", "perf",
       "the calendar-pinned run actually promoted (the identity "
       "check exercised the bucketed tier, not the heap twice)",
       "band", part="scheduler_identity", metric="calendar_promotions",
       lo=1.0, hi=math.inf),
    _c("PF.batch_identical", "perf",
       "the vectorized event-population driver fires the identical "
       "handler log as the per-arrival generator it replaced",
       "band", part="batch_identity", metric="fire_log_identical",
       lo=1.0, hi=1.0),

    # OB — distributed tracing, telemetry plane, SLO flight recorder
    _c("OB.forwarded_requests_traced", "obs",
       "DPU-to-DPU forwarded requests leave routing hop spans",
       "band", part="trace", metric="forwarded_hops",
       lo=1.0, hi=math.inf),
    _c("OB.failover_requests_traced", "obs",
       "failed-over DPU->host requests leave degraded-path spans",
       "band", part="trace", metric="failover_spans",
       lo=1.0, hi=math.inf),
    _c("OB.migrations_traced", "obs",
       "shard migration pulls/exports carry trace context too",
       "band", part="trace", metric="migration_spans",
       lo=1.0, hi=math.inf),
    _c("OB.traces_connect_across_nodes", "obs",
       "every request that crossed a node boundary renders as one "
       "connected tree in the merged cluster trace",
       "band", part="trace", metric="adopted_connected_fraction",
       lo=1.0, hi=1.0),
    _c("OB.no_dangling_parents", "obs",
       "no span in the merged cluster trace references a parent "
       "that is not in the trace",
       "band", part="trace", metric="dangling_parents",
       lo=0.0, hi=0.0),
    _c("OB.spans_close", "obs",
       "dropped and faulted requests still close their spans — only "
       "requests wedged in the crashed node's stack stay open",
       "band", part="trace", metric="spans_open", lo=0.0, hi=50.0),
    _c("OB.plane_sees_collapse", "obs",
       "the telemetry plane's derived goodput series shows node1 "
       "collapsing after the DPU crash",
       "order", part="plane",
       smaller="node1_goodput_post_fault",
       larger="node1_goodput_pre_fault"),
    _c("OB.breaker_state_exported", "obs",
       "the breaker opening is visible in the derived "
       "breaker_state series",
       "band", part="plane", metric="breaker_opened",
       lo=1.0, hi=1.0),
    _c("OB.slo_detects_fault", "obs",
       "the SLO monitor fires within a few scrape windows of the "
       "injected fault",
       "band", part="slo", metric="detection_latency_s",
       lo=0.0, hi=4e-3),
    _c("OB.incident_bundle_dumped", "obs",
       "the flight recorder dumps an SLO-breach incident bundle "
       "with spans from every node",
       "band", part="slo", metric="slo_breach_recorded",
       lo=1.0, hi=1.0),
    _c("OB.zero_perturbation", "obs",
       "the identical scenario run with no telemetry at all "
       "produces byte-identical client outcomes and counters",
       "band", part="control", metric="tracing_sim_identical",
       lo=1.0, hi=1.0),
    _c("OB.span_volume_bounded", "obs",
       "tracing costs a bounded number of spans per request",
       "band", part="control", metric="spans_per_request",
       lo=1.0, hi=12.0),

    # AT — latency attribution, conservation, offload advisor
    _c("AT.latency_conserved", "attr",
       "every request's attributed per-resource segments sum to its "
       "measured end-to-end latency within float tolerance",
       "band", part="conservation", metric="max_abs_error_s",
       lo=0.0, hi=1e-9),
    _c("AT.all_requests_conserved", "attr",
       "the conservation invariant holds for every attributed "
       "request, not just most",
       "band", part="conservation", metric="conserved_fraction",
       lo=1.0, hi=1.0),
    _c("AT.forwarded_requests_attributed", "attr",
       "requests forwarded DPU-to-DPU across nodes still decompose "
       "into a conserved ledger (remote subtrees included)",
       "band", part="conservation", metric="forwarded_requests",
       lo=1.0, hi=math.inf),
    _c("AT.failover_requests_attributed", "attr",
       "requests that failed over to the host path after the DPU "
       "crash are attributed too",
       "band", part="conservation", metric="failover_requests",
       lo=1.0, hi=math.inf),
    _c("AT.advisor_matches_best_static", "attr",
       "the offload advisor's recommendation equals the measured "
       "best static placement for every priced kernel/size",
       "band", part="advisor", config="*", metric="matches",
       lo=1.0, hi=1.0),
    _c("AT.advisor_quantifies_offload", "attr",
       "fed observed spans, the advisor prices moving a host-placed "
       "compress to the ASIC and quantifies the freed host cycles",
       "band", part="online", config="compress@host_cpu",
       metric="host_cycles_saved_per_call", lo=1.0, hi=math.inf),
    _c("AT.incidents_carry_attribution", "attr",
       "flight-recorder incident bundles embed the breach window's "
       "attribution summary",
       "band", part="conservation",
       metric="incidents_with_attribution", lo=1.0, hi=math.inf),
    _c("AT.zero_perturbation", "attr",
       "the identical scenario run with attribution off produces "
       "byte-identical client outcomes and counters",
       "band", part="control", metric="attr_sim_identical",
       lo=1.0, hi=1.0),

    # SL — overload-safe self-healing vs the chaos matrix
    _c("SL.flash_goodput_held", "slo",
       "with admission + autoscaling, on-time goodput through the "
       "flash crowd's back half stays >=90% of steady state",
       "band", part="flash", metric="protected_surge_ratio",
       lo=0.9, hi=math.inf),
    _c("SL.flash_unprotected_collapses", "slo",
       "the same surge with protection off collapses to <=60% of "
       "steady-state on-time goodput (queueing collapse)",
       "band", part="flash", metric="unprotected_surge_ratio",
       lo=0.0, hi=0.6),
    _c("SL.violation_seconds_5x", "slo",
       "summed across the chaos matrix, protection cuts "
       "SLO-violation-seconds by >=5x",
       "band", part="summary", metric="violation_seconds_ratio",
       lo=5.0, hi=math.inf),
    _c("SL.autoscaler_reacts", "slo",
       "the reject-rate trigger provisions new nodes during the "
       "flash crowd",
       "band", part="autoscale", metric="scaled_up",
       lo=1.0, hi=1.0),
    _c("SL.autoscaler_converges", "slo",
       "the node count settles (no flapping) within the scenario "
       "window",
       "band", part="autoscale", metric="converged",
       lo=1.0, hi=1.0),
    _c("SL.failover_heals", "slo",
       "capacity reconciliation beats ride-it-out on on-time "
       "requests through a regional DPU failure",
       "band", part="matrix", config="regional_failover",
       metric="goodput_ratio", lo=1.05, hi=math.inf),
    _c("SL.upgrade_zero_late", "slo",
       "make-before-break rolling upgrade finishes with zero late "
       "responses; break-before-make leaves thousands",
       "band", part="matrix", config="rolling_upgrade",
       metric="protected_late", lo=0.0, hi=0.0),
    _c("SL.noisy_budget_enforced", "slo",
       "the batch tenant's flood is refused at the door only when "
       "its token-bucket budget is armed",
       "order", part="matrix", config="noisy_neighbor",
       smaller="unprotected_errors", larger="protected_errors"),
    _c("SL.noisy_pro_isolated", "slo",
       "the pro tenant's on-time goodput never pays for the batch "
       "tenant's flood",
       "band", part="matrix", config="noisy_neighbor",
       metric="pro_goodput_ratio", lo=1.0, hi=math.inf),
    _c("SL.hotshard_split_fires", "slo",
       "sustained heat on one shard triggers exactly one split",
       "band", part="hotshard", metric="splits", lo=1.0, hi=1.0),
    _c("SL.hotshard_split_halves_p99", "slo",
       "splitting the hot shard at least halves its p99 latency",
       "band", part="hotshard", metric="p99_split_ratio",
       lo=2.0, hi=math.inf),
    _c("SL.twins_identical", "slo",
       "every protection-off control twin is byte-identical to the "
       "bare unprotected baseline",
       "band", part="summary", metric="twins_identical",
       lo=1.0, hi=1.0),

    # Q — distributed scan queries: pushdown vs pull
    _c("Q.identical_answers", "query",
       "pushdown and pull return bitwise-identical answers for "
       "every query shape",
       "band", part="identity", metric="all_identical",
       lo=1.0, hi=1.0),
    _c("Q.auto_plan_identical", "query",
       "the planner-driven auto plan returns the same answer as "
       "either forced plan",
       "band", part="identity", metric="auto_matches",
       lo=1.0, hi=1.0),
    _c("Q.pushdown_frees_host_cores", "query",
       "at 8 nodes the pushdown plan burns >10x fewer coordinator "
       "host cycles than pulling the table",
       "ratio_at", part="scatter",
       numerator="pull_host_busy_ms",
       denominator="pushdown_host_busy_ms",
       row=8, min_factor=10.0),
    _c("Q.pushdown_starves_wire", "query",
       "pushdown moves >50x fewer bytes to the coordinator than "
       "shipping raw shards",
       "ratio_at", part="scatter",
       numerator="pull_wire_bytes",
       denominator="pushdown_wire_bytes",
       row=8, min_factor=50.0),
    _c("Q.pushdown_scales_out", "query",
       "pushdown latency improves monotonically as shards spread "
       "over more DPUs",
       "monotonic", part="scatter", series="pushdown_speedup"),
    _c("Q.fast_network_pull_wins", "query",
       "the honest regime: at 100 Gbps pulling to EPYC cores beats "
       "pushdown latency at every node count",
       "dominates", part="scatter",
       winner="pushdown_ms", loser="pull_ms", min_factor=1.0),
    _c("Q.planner_matches_measured", "query",
       "the cluster-aware cost model picks the measured-argmin plan "
       "in every benchmarked regime",
       "band", part="planner", config="*", metric="matches",
       lo=1.0, hi=1.0),
    _c("Q.wide_scan_never_pushes", "query",
       "a non-selective full scan is never pushed down — pushdown "
       "cannot shrink what it ships",
       "band", part="planner", config="wide_fast",
       metric="planner_pushdown", lo=0.0, hi=0.0),
    _c("Q.slow_network_flips_to_pushdown", "query",
       "on a 2 Gbps fabric the selective aggregate flips to "
       "pushdown for every shard",
       "band", part="planner", config="agg_slow",
       metric="pushdown_shard_fraction", lo=1.0, hi=1.0),
    _c("Q.misdirected_scans_forwarded", "query",
       "a stale coordinator's scan sub-queries ride the DPU-side "
       "forwarding path",
       "band", part="routing", metric="forwards",
       lo=1.0, hi=math.inf),
    _c("Q.stale_routing_still_exact", "query",
       "forwarded scans return exactly the fresh coordinator's "
       "answer",
       "band", part="routing", metric="matches_truth",
       lo=1.0, hi=1.0),
)


# -- selectors --------------------------------------------------------------


class _Missing(Exception):
    """A part/series/metric the claim needs is absent (schema drift)."""


def _get_part(artifact: Dict[str, Any], claim: Claim) -> Dict[str, Any]:
    experiment = artifact["experiments"][claim.experiment]
    part_name = claim.params["part"]
    try:
        return experiment["parts"][part_name]
    except KeyError:
        raise _Missing(f"part {part_name!r} missing from "
                       f"{claim.experiment}")


def _sweep_rows(part: Dict[str, Any]) -> List[Dict[str, Any]]:
    if part.get("type") != "sweep":
        raise _Missing(f"expected a sweep part, got {part.get('type')!r}")
    rows = part["rows"]
    if not rows:
        raise _Missing("sweep has no rows")
    return rows


def _series(part: Dict[str, Any], name: str) -> List[float]:
    values = []
    for row in _sweep_rows(part):
        if name not in row["values"]:
            raise _Missing(f"series {name!r} missing at "
                           f"x={row['x']}")
        values.append(row["values"][name])
    return values


def _pick_row(part: Dict[str, Any], row_sel: Any) -> Dict[str, Any]:
    rows = _sweep_rows(part)
    if row_sel in ("last", None):
        return rows[-1]
    if row_sel == "first":
        return rows[0]
    for row in rows:
        if row["x"] == row_sel:
            return row
    raise _Missing(f"no sweep row at x={row_sel!r}")


def _scalar(part: Dict[str, Any], params: Mapping[str, Any]) -> float:
    """Resolve one numeric value from any part type.

    Tables name a ``metric``; nested parts add a ``config``; sweeps
    name a ``series`` plus an optional ``row`` selector.
    """
    kind = part.get("type")
    if kind == "table":
        metric = params["metric"]
        if metric not in part["values"]:
            raise _Missing(f"metric {metric!r} missing")
        return part["values"][metric]
    if kind == "nested":
        config, metric = params["config"], params["metric"]
        if config not in part["rows"]:
            raise _Missing(f"config {config!r} missing")
        if metric not in part["rows"][config]:
            raise _Missing(f"metric {config}/{metric!r} missing")
        return part["rows"][config][metric]
    if kind == "sweep":
        series = params.get("series", params.get("metric"))
        row = _pick_row(part, params.get("row"))
        if series not in row["values"]:
            raise _Missing(f"series {series!r} missing at "
                           f"x={row['x']}")
        return row["values"][series]
    raise _Missing(f"unknown part type {kind!r}")


# -- check kinds ------------------------------------------------------------


def _fmt(value: float) -> str:
    if isinstance(value, float) and (
            abs(value) >= 1000 or (value != 0 and abs(value) < 0.001)):
        return f"{value:.3e}"
    return f"{value:.4g}" if isinstance(value, float) else str(value)


def _check_monotonic(claim, part):
    names = claim.params["series"]
    if isinstance(names, str):
        names = [names]
    tolerance = claim.params.get("tolerance", 0.02)
    for name in names:
        values = _series(part, name)
        for a, b in zip(values, values[1:]):
            if b < a * (1 - tolerance) - 1e-12:
                return FAIL, f"{name}: {_fmt(a)} -> {_fmt(b)}", \
                    "non-decreasing"
    return PASS, f"{', '.join(names)} non-decreasing", "non-decreasing"


def _check_linear(claim, part):
    name = claim.params["series"]
    floor = claim.params.get("r2_floor", 0.95)
    rows = _sweep_rows(part)
    xs = [row["x"] for row in rows]
    ys = _series(part, name)
    n = len(xs)
    if n < 3:
        return FAIL, f"{n} points", ">= 3 sweep points"
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return FAIL, "degenerate sweep", f"R^2 >= {floor}"
    slope = sum((x - mean_x) * (y - mean_y)
                for x, y in zip(xs, ys)) / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2
                 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1 - ss_res / ss_tot if ss_tot else 1.0
    status = PASS if r2 >= floor else FAIL
    return status, f"R^2 = {r2:.4f}", f"R^2 >= {floor}"


def _check_dominates(claim, part):
    winner, loser = claim.params["winner"], claim.params["loser"]
    factor = claim.params.get("min_factor", 1.0)
    worst = math.inf
    for w, l in zip(_series(part, winner), _series(part, loser)):
        ratio = w / l if l else math.inf
        worst = min(worst, ratio)
    status = PASS if worst >= factor else FAIL
    return status, f"min {winner}/{loser} = {_fmt(worst)}", \
        f">= {factor}x at every row"


def _check_ratio_at(claim, part):
    row = _pick_row(part, claim.params.get("row"))
    numerator = claim.params["numerator"]
    denominator = claim.params["denominator"]
    for name in (numerator, denominator):
        if name not in row["values"]:
            raise _Missing(f"series {name!r} missing at x={row['x']}")
    den = row["values"][denominator]
    ratio = row["values"][numerator] / den if den else math.inf
    factor = claim.params["min_factor"]
    status = PASS if ratio >= factor else FAIL
    return status, \
        f"{numerator}/{denominator} = {_fmt(ratio)} at " \
        f"x={_fmt(row['x'])}", f">= {factor}x"


def _check_band(claim, part):
    lo, hi = claim.params["lo"], claim.params["hi"]
    name = claim.params.get("metric", claim.params.get("series"))
    hi_str = "inf" if hi == math.inf else _fmt(hi)
    expected = f"in [{_fmt(lo)}, {hi_str}]"
    # config="*" on a nested part: the band must hold per config.
    if part.get("type") == "nested" and \
            claim.params.get("config") == "*":
        if not part["rows"]:
            raise _Missing("nested part has no configs")
        for config in part["rows"]:
            value = _scalar(part, {**claim.params, "config": config})
            if not lo <= value <= hi:
                return FAIL, f"{config}: {name} = {_fmt(value)}", \
                    expected
        return PASS, f"{name} in band for all " \
            f"{len(part['rows'])} configs", expected
    value = _scalar(part, claim.params)
    status = PASS if lo <= value <= hi else FAIL
    return status, f"{name} = {_fmt(value)}", expected


def _check_order(claim, part):
    smaller_name = claim.params["smaller"]
    larger_name = claim.params["larger"]
    base = dict(claim.params)
    smaller = _scalar(part, {**base, "metric": smaller_name,
                             "series": smaller_name})
    larger = _scalar(part, {**base, "metric": larger_name,
                            "series": larger_name})
    status = PASS if smaller < larger else FAIL
    return status, \
        f"{smaller_name} = {_fmt(smaller)}, " \
        f"{larger_name} = {_fmt(larger)}", \
        f"{smaller_name} < {larger_name}"


def _check_rel_close(claim, part):
    a_name, b_name = claim.params["a"], claim.params["b"]
    rel = claim.params.get("rel_tol", 0.2)
    absolute = claim.params.get("abs_tol", 0.0)
    worst = 0.0
    for a, b in zip(_series(part, a_name), _series(part, b_name)):
        gap = abs(a - b)
        allowed = rel * abs(b) + absolute
        if allowed:
            worst = max(worst, gap / allowed)
        elif gap:
            return FAIL, f"|{a_name}-{b_name}| = {_fmt(gap)}", \
                "within tolerance at every row"
    status = PASS if worst <= 1.0 else FAIL
    return status, f"worst gap = {worst:.2f}x the tolerance", \
        f"|{a_name}-{b_name}| <= {rel}*{b_name} + {absolute}"


def _check_nested_ratio(claim, part):
    if part.get("type") != "nested":
        raise _Missing(f"expected a nested part, got "
                       f"{part.get('type')!r}")
    metric = claim.params["metric"]
    num_cfg = claim.params["numerator_config"]
    den_cfg = claim.params["denominator_config"]
    values = {}
    for config in (num_cfg, den_cfg):
        if config not in part["rows"]:
            raise _Missing(f"config {config!r} missing")
        if metric not in part["rows"][config]:
            raise _Missing(f"metric {config}/{metric!r} missing")
        values[config] = part["rows"][config][metric]
    den = values[den_cfg]
    ratio = values[num_cfg] / den if den else math.inf
    factor = claim.params["min_factor"]
    status = PASS if ratio >= factor else FAIL
    return status, \
        f"{metric}: {num_cfg} / {den_cfg} = {_fmt(ratio)}", \
        f">= {factor}x"


_CHECKS = {
    "monotonic": _check_monotonic,
    "linear": _check_linear,
    "dominates": _check_dominates,
    "ratio_at": _check_ratio_at,
    "band": _check_band,
    "order": _check_order,
    "rel_close": _check_rel_close,
    "nested_ratio": _check_nested_ratio,
}


# -- evaluation -------------------------------------------------------------


def evaluate_claim(claim: Claim,
                   artifact: Dict[str, Any]) -> ClaimResult:
    """One claim against one artifact document."""
    if claim.experiment not in artifact.get("experiments", {}):
        return ClaimResult(claim, SKIP,
                           detail=f"experiment {claim.experiment!r} "
                                  "not in artifact")
    check = _CHECKS.get(claim.kind)
    if check is None:
        return ClaimResult(claim, FAIL,
                           detail=f"unknown claim kind {claim.kind!r}")
    try:
        part = _get_part(artifact, claim)
        status, measured, expected = check(claim, part)
    except _Missing as exc:
        return ClaimResult(claim, FAIL, detail=str(exc))
    return ClaimResult(claim, status, measured=measured,
                       expected=expected)


def evaluate_all(artifact: Dict[str, Any],
                 claims: Optional[Tuple[Claim, ...]] = None,
                 ) -> List[ClaimResult]:
    """Every claim in the registry against one artifact."""
    return [evaluate_claim(claim, artifact)
            for claim in (claims if claims is not None else CLAIMS)]


def render_claim_report(results: List[ClaimResult]) -> str:
    """The PASS/FAIL/SKIP table ``--check`` prints."""
    from ..bench.reporting import format_table

    rows = []
    for result in results:
        rows.append([
            result.status,
            result.claim.id,
            result.measured or result.detail,
            result.expected,
        ])
    counts = {status: sum(1 for r in results if r.status == status)
              for status in (PASS, FAIL, SKIP)}
    table = format_table(["status", "claim", "measured", "expected"],
                         rows)
    summary = (f"{counts[PASS]} passed, {counts[FAIL]} failed, "
               f"{counts[SKIP]} skipped "
               f"of {len(results)} paper claims")
    return f"{table}\n\n{summary}"
