"""Critical-path extraction and conserved latency attribution.

One DDS request's end-to-end latency is the length of its root span
(``dds.request``).  Every instant of that window is attributed to
exactly one *resource category* — the category of the **deepest span
active at that instant** in the request's (possibly cross-node) tree,
or ``queue`` when only the root itself is active (dispatch/queue
wait).  Summed per category this yields a ledger whose segments add
up to the measured latency *exactly*: the elementary intervals of the
sweep partition the root window, so conservation is structural, not
statistical.

Cross-node trees: a forwarded request's remote subtree hangs under
the origin's ``cluster.route`` span via the ``remote_parent`` ref
recorded by :meth:`~repro.obs.trace.Tracer.adopt`.  The
:class:`SpanIndex` resolves those refs into one global parent table,
so a request that hopped DPU-to-DPU (or was served by a crashed
node's host) is attributed as one tree.

Resource categories (:data:`CATEGORIES`):

``queue``      root self-time and ring-buffer hop spans (``*.hop``)
``dpu_arm``    DPU Arm-core work (UDF parse, shard serve, CE on Arm)
``asic``       accelerator jobs (``ce.kernel.*`` with device
               ``dpu_asic``)
``nic_wire``   wire/NIC time (TCP, RDMA, NE send paths)
``pcie``       PCIe/DMA transfers (``ce.*`` on ``pcie_*`` peers)
``ssd``        flash and filesystem time (``ssd.*``, ``fs.*``,
               ``journal.*``, migration exports)
``host_cpu``   host-core work (degraded serves, host forward path)
``forward``    the DPU-to-DPU routing hop (``cluster.route``)
``retry``      retry attempts and backoff (``retry.*``, faults)
``other``      anything unrecognized (kept so the ledger still sums)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CATEGORIES",
    "SpanIndex",
    "RequestAttribution",
    "AttributionReport",
    "KernelObservation",
    "categorize",
    "attribute_request",
    "build_report",
]

#: Every category a segment can be attributed to, in report order.
CATEGORIES: Tuple[str, ...] = (
    "queue", "dpu_arm", "asic", "nic_wire", "pcie", "ssd",
    "host_cpu", "forward", "retry", "other",
)

#: ``ce.kernel.*`` / ``ce.fused.*`` device attribute -> category.
_DEVICE_CATEGORY = {
    "dpu_asic": "asic",
    "dpu_cpu": "dpu_arm",
    "host_cpu": "host_cpu",
}

#: exact span-name prefixes, first match wins (checked before the
#: span's own coarse category).
_NAME_RULES: Tuple[Tuple[str, str], ...] = (
    ("cluster.route", "forward"),
    ("cluster.shard_dpu", "dpu_arm"),
    ("cluster.shard_host", "host_cpu"),
    ("dds.udf_parse", "dpu_arm"),
    ("dds.offload", "dpu_arm"),
    ("dds.forward", "host_cpu"),
    ("ce.sproc", "dpu_arm"),
    ("se.dpu_", "dpu_arm"),
    ("se.execute", "dpu_arm"),
    ("se.", "host_cpu"),          # host-side frontend enqueue spans
    ("ssd.", "ssd"),
    ("fs.", "ssd"),
    ("journal.", "ssd"),
    ("mig.export", "ssd"),
    ("rebalance.pull", "nic_wire"),
    ("tcp.", "nic_wire"),
    ("rdma.", "nic_wire"),
    ("ne.", "nic_wire"),
    ("retry.", "retry"),
)

#: span ``category`` fallback when no name rule matched.
_CATEGORY_FALLBACK = {
    "compute": "dpu_arm",
    "network": "nic_wire",
    "storage": "ssd",
    "fault": "retry",
}


def categorize(span) -> str:
    """The resource category one span's time is attributed to.

    Accepts anything span-shaped (``name`` / ``category`` / ``attrs``
    attributes) — real :class:`~repro.obs.trace.Span` objects or test
    stubs alike.
    """
    name = span.name
    if name.endswith(".hop"):
        return "queue"
    if name.startswith(("ce.kernel.", "ce.fused.")):
        device = span.attrs.get("device", "")
        if isinstance(device, str) and device.startswith("pcie_"):
            return "pcie"
        return _DEVICE_CATEGORY.get(device, "dpu_arm")
    for prefix, category in _NAME_RULES:
        if name.startswith(prefix):
            return category
    return _CATEGORY_FALLBACK.get(span.category, "other")


class SpanIndex:
    """A global (node, span_id) table over per-node tracers.

    Resolves each span's parent — local ``parent_id`` first, then the
    ``remote_parent`` ref (``"node:span_id"``) recorded when a node
    adopted an upstream trace context — so cross-node request trees
    walk as one.
    """

    def __init__(self, tracers: Iterable[Tuple[str, Any]]):
        #: (node, span_id) -> span
        self.spans: Dict[Tuple[str, int], Any] = {}
        #: (node, span_id) -> node the span belongs to (= key[0])
        self._children: Dict[Tuple[str, int],
                             List[Tuple[str, int]]] = {}
        self._nodes: List[str] = []
        for node, tracer in tracers:
            self._nodes.append(node)
            for span in tracer.all_spans():
                self.spans[(node, span.span_id)] = span
        for key, span in self.spans.items():
            parent = self.parent_key(key)
            if parent is not None:
                self._children.setdefault(parent, []).append(key)
        for children in self._children.values():
            children.sort()

    def parent_key(self, key: Tuple[str, int]
                   ) -> Optional[Tuple[str, int]]:
        """The global parent of ``key``, or None for a root."""
        node, _ = key
        span = self.spans[key]
        if span.parent_id is not None:
            local = (node, span.parent_id)
            if local in self.spans:
                return local
        remote = span.attrs.get("remote_parent")
        if isinstance(remote, str) and ":" in remote:
            remote_node, _, span_id = remote.rpartition(":")
            try:
                remote_key = (remote_node, int(span_id))
            except ValueError:
                return None
            if remote_key in self.spans:
                return remote_key
        return None

    def children(self, key: Tuple[str, int]) -> List[Tuple[str, int]]:
        """Direct children of ``key``, sorted for determinism."""
        return self._children.get(key, [])

    def subtree(self, root: Tuple[str, int]
                ) -> List[Tuple[Tuple[str, int], int]]:
        """``(key, depth)`` pairs of ``root``'s subtree, preorder."""
        out: List[Tuple[Tuple[str, int], int]] = []
        stack: List[Tuple[Tuple[str, int], int]] = [(root, 0)]
        while stack:
            key, depth = stack.pop()
            out.append((key, depth))
            for child in reversed(self.children(key)):
                stack.append((child, depth + 1))
        return out

    def request_roots(self, name: str = "dds.request"
                      ) -> List[Tuple[str, int]]:
        """Finished request roots: ``name`` spans with no parent.

        An adopted remote root (one carrying ``remote_parent``) is a
        *subtree* of the origin's request, not a root of its own.
        """
        roots = [key for key, span in self.spans.items()
                 if span.name == name and span.finished
                 and self.parent_key(key) is None]
        return sorted(roots)


class RequestAttribution:
    """One request's conserved latency ledger."""

    __slots__ = ("node", "span_id", "shard", "path", "start_s",
                 "end_s", "segments", "spans", "nodes_touched",
                 "forwarded", "failover")

    def __init__(self, node: str, span_id: int, shard: Optional[int],
                 path: str, start_s: float, end_s: float,
                 segments: Dict[str, float], spans: int,
                 nodes_touched: int, forwarded: bool, failover: bool):
        self.node = node
        self.span_id = span_id
        self.shard = shard
        self.path = path
        self.start_s = start_s
        self.end_s = end_s
        #: category -> attributed seconds; sums to :attr:`total_s`
        self.segments = segments
        self.spans = spans
        self.nodes_touched = nodes_touched
        self.forwarded = forwarded
        self.failover = failover

    @property
    def total_s(self) -> float:
        """The measured end-to-end latency (root span length)."""
        return self.end_s - self.start_s

    @property
    def attributed_s(self) -> float:
        """Sum of all segments (== :attr:`total_s` up to float eps)."""
        return sum(self.segments.values())

    @property
    def conservation_error_s(self) -> float:
        """|attributed - measured|; the invariant the claims check."""
        return abs(self.attributed_s - self.total_s)

    def dominant(self) -> Tuple[str, float]:
        """The largest segment: ``(category, seconds)``."""
        if not self.segments:
            return ("queue", 0.0)
        return max(self.segments.items(),
                   key=lambda kv: (kv[1], kv[0]))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (``--attr-out`` reports)."""
        return {
            "node": self.node,
            "span_id": self.span_id,
            "shard": self.shard,
            "path": self.path,
            "start_s": self.start_s,
            "total_s": self.total_s,
            "segments": dict(self.segments),
            "spans": self.spans,
            "nodes_touched": self.nodes_touched,
            "forwarded": self.forwarded,
            "failover": self.failover,
        }

    def __repr__(self) -> str:
        top, seconds = self.dominant()
        return (f"RequestAttribution({self.node}:{self.span_id} "
                f"{self.total_s:.3g}s, top {top}={seconds:.3g}s)")


def attribute_request(index: SpanIndex, root_key: Tuple[str, int]
                      ) -> RequestAttribution:
    """Decompose one request's latency by a deepest-active-span sweep.

    Every span interval in the tree is clamped to the root window;
    the window is cut at every clamped boundary, and each elementary
    interval is charged to the deepest active span (ties broken by
    latest start, then ``(node, span_id)`` — deterministic).  Open
    descendants (wedged in a crashed node) are treated as running to
    the root's end.
    """
    root = index.spans[root_key]
    window_start, window_end = root.start_s, root.end_s
    members = []          # (start, end, depth, node, span_id, category)
    nodes = set()
    forwarded = failover = False
    for key, depth in index.subtree(root_key):
        span = index.spans[key]
        nodes.add(key[0])
        if span.name == "cluster.route":
            forwarded = True
        elif span.name == "cluster.shard_host":
            failover = True
        end = span.end_s if span.end_s is not None else window_end
        start = min(max(span.start_s, window_start), window_end)
        end = min(max(end, start), window_end)
        category = "queue" if depth == 0 else categorize(span)
        members.append((start, end, depth, key[0], key[1], category))

    boundaries = sorted({edge for start, end, *_ in members
                         for edge in (start, end)})
    segments: Dict[str, float] = {}
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi <= lo:
            continue
        # Deepest active span wins; the root (depth 0) is always
        # active, so every interval lands somewhere.
        winner = max(
            (m for m in members if m[0] <= lo and m[1] >= hi),
            key=lambda m: (m[2], m[0], m[3], m[4]),
        )
        category = winner[5]
        segments[category] = segments.get(category, 0.0) + (hi - lo)

    shard = root.attrs.get("shard")
    return RequestAttribution(
        node=root_key[0], span_id=root_key[1],
        shard=shard if isinstance(shard, int) else None,
        path=str(root.attrs.get("path", "unknown")),
        start_s=window_start, end_s=window_end,
        segments=segments, spans=len(members),
        nodes_touched=len(nodes), forwarded=forwarded,
        failover=failover,
    )


class KernelObservation:
    """Aggregate of ``ce.kernel.*`` spans for one (kernel, device)."""

    __slots__ = ("kernel", "device", "calls", "bytes_total",
                 "seconds_total")

    def __init__(self, kernel: str, device: str):
        self.kernel = kernel
        self.device = device
        self.calls = 0
        self.bytes_total = 0.0
        self.seconds_total = 0.0

    def add(self, span) -> None:
        """Fold one finished ``ce.kernel.*`` span into the census."""
        self.calls += 1
        self.bytes_total += float(span.attrs.get("input_bytes", 0))
        self.seconds_total += span.duration_s

    @property
    def mean_bytes(self) -> float:
        return self.bytes_total / self.calls if self.calls else 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.seconds_total / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (``--attr-out`` reports)."""
        return {"kernel": self.kernel, "device": self.device,
                "calls": self.calls, "bytes_total": self.bytes_total,
                "seconds_total": self.seconds_total}


class AttributionReport:
    """Every attributed request of one run, plus the aggregates."""

    SCHEMA_NAME = "repro.obs/attr"
    SCHEMA_VERSION = 1

    def __init__(self, requests: List[RequestAttribution],
                 kernels: Optional[Dict[Tuple[str, str],
                                        KernelObservation]] = None):
        self.requests = requests
        #: (kernel, device) -> observed kernel aggregate
        self.kernels = kernels if kernels is not None else {}

    # -- aggregates ----------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Attributed seconds per category, across every request."""
        out: Dict[str, float] = {}
        for request in self.requests:
            for category, seconds in request.segments.items():
                out[category] = out.get(category, 0.0) + seconds
        return out

    def by_node(self) -> Dict[str, Dict[str, float]]:
        """Per-node (the request's entry node) category totals."""
        out: Dict[str, Dict[str, float]] = {}
        for request in self.requests:
            ledger = out.setdefault(request.node, {})
            for category, seconds in request.segments.items():
                ledger[category] = ledger.get(category, 0.0) + seconds
        return out

    def by_shard(self) -> Dict[str, Dict[str, float]]:
        """Per-shard category totals (requests with a shard attr)."""
        out: Dict[str, Dict[str, float]] = {}
        for request in self.requests:
            if request.shard is None:
                continue
            ledger = out.setdefault(str(request.shard), {})
            for category, seconds in request.segments.items():
                ledger[category] = ledger.get(category, 0.0) + seconds
        return out

    def top_bottlenecks(self, k: int = 5
                        ) -> List[Tuple[str, str, float]]:
        """Top-k ``(node, category, seconds)``, largest first.

        Ties are broken by ``(node, category)`` so the ranking is
        fully deterministic.
        """
        rows = [(node, category, seconds)
                for node, ledger in self.by_node().items()
                for category, seconds in ledger.items()]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows[:k]

    def max_conservation_error_s(self) -> float:
        """The worst per-request |attributed - measured| gap."""
        return max((r.conservation_error_s for r in self.requests),
                   default=0.0)

    def conserved_fraction(self, tol_s: float = 1e-9) -> float:
        """Fraction of requests whose ledger sums within ``tol_s``."""
        if not self.requests:
            return 1.0
        good = sum(1 for r in self.requests
                   if r.conservation_error_s <= tol_s)
        return good / len(self.requests)

    def to_dict(self, max_requests: int = 0) -> Dict[str, Any]:
        """The ``--attr-out`` report document (JSON-able).

        ``max_requests`` bounds the per-request detail (0 = totals
        only); aggregates always cover every request.
        """
        detail = (self.requests[:max_requests] if max_requests
                  else [])
        return {
            "schema": self.SCHEMA_NAME,
            "schema_version": self.SCHEMA_VERSION,
            "requests": len(self.requests),
            "totals_s": self.totals(),
            "by_node": self.by_node(),
            "by_shard": self.by_shard(),
            "top_bottlenecks": [
                {"node": node, "category": category, "seconds": s}
                for node, category, s in self.top_bottlenecks()
            ],
            "max_conservation_error_s":
                self.max_conservation_error_s(),
            "kernels": [obs.to_dict()
                        for _key, obs in sorted(self.kernels.items())],
            "request_detail": [r.to_dict() for r in detail],
        }

    def __repr__(self) -> str:
        return (f"AttributionReport({len(self.requests)} requests, "
                f"max_err={self.max_conservation_error_s():.3g}s)")


def build_report(tracers: Iterable[Tuple[str, Any]],
                 root_name: str = "dds.request") -> AttributionReport:
    """Attribute every finished request across a set of node tracers.

    ``tracers`` is the ``(node, tracer)`` list a
    :class:`~repro.obs.plane.ClusterTelemetry` hands out
    (``plane.tracers()``) — or any single-node equivalent.
    """
    index = SpanIndex(tracers)
    requests = [attribute_request(index, root)
                for root in index.request_roots(root_name)]
    kernels: Dict[Tuple[str, str], KernelObservation] = {}
    for _key, span in sorted(index.spans.items()):
        if not span.name.startswith("ce.kernel.") \
                or not span.finished:
            continue
        kernel = span.name[len("ce.kernel."):]
        device = str(span.attrs.get("device", "unknown"))
        observation = kernels.get((kernel, device))
        if observation is None:
            observation = kernels[(kernel, device)] = \
                KernelObservation(kernel, device)
        observation.add(span)
    return AttributionReport(requests, kernels)
