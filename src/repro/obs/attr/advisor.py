"""The quantitative offload advisor (v0): host vs Arm vs ASIC.

ROADMAP item 3 asks for placement decisions *earned from measured
per-resource breakdowns* instead of hard-coded.  This advisor is the
first cut: it prices every feasible placement of a DP kernel from
the calibrated cost tables (:mod:`repro.hardware.costs`) and the DPU
profile's accelerator specs, and recommends the latency-minimizing
one together with the two deltas an operator actually trades on —
estimated latency change and host cycles freed per call.

Fed an :class:`~repro.obs.attr.criticalpath.AttributionReport` (the
online path), it turns the observed ``ce.kernel.*`` span census into
per-kernel recommendations sized by the *measured* byte and call
volumes — "move ``compress`` (1 MiB mean, 40 calls) from the host to
the ASIC: ~9x faster, frees ~21M host cycles per call".

The estimates intentionally mirror the simulation's own price model
(cycles/frequency for cores, setup + bytes/throughput for ASICs), so
the ``attr`` bench experiment can hold the advisor to a hard claim:
its recommendation must match the measured-best static placement for
every kernel/size it is asked about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...hardware.costs import DEFAULT_COSTS, CostModel
from ...hardware.profiles import (
    BLUEFIELD2,
    EPYC_HOST,
    DpuProfile,
    HostProfile,
)

__all__ = ["PlacementEstimate", "Recommendation", "OffloadAdvisor"]

#: the placements the v0 advisor prices.
PLACEMENTS = ("host", "arm", "asic")


@dataclass(frozen=True)
class PlacementEstimate:
    """The priced cost of one kernel placement."""

    placement: str               # "host" | "arm" | "asic"
    latency_s: float             # estimated per-call latency
    host_cycles: float           # host cycles consumed per call


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one kernel at one payload size."""

    kernel: str
    nbytes: float
    placement: str               # the latency-argmin placement
    estimates: Dict[str, PlacementEstimate]
    #: latency_s(recommended) - latency_s(host): negative = faster
    latency_delta_vs_host_s: float
    #: host cycles freed per call by moving off the host
    host_cycles_saved_per_call: float


class OffloadAdvisor:
    """Prices kernel placements and recommends the cheapest."""

    def __init__(self, cost_model: CostModel = DEFAULT_COSTS,
                 host_profile: HostProfile = EPYC_HOST,
                 dpu_profile: DpuProfile = BLUEFIELD2):
        self.costs = cost_model
        self.host = host_profile
        self.dpu = dpu_profile

    # -- pricing -------------------------------------------------------------

    def estimate(self, kernel: str, nbytes: float
                 ) -> Dict[str, PlacementEstimate]:
        """Price every feasible placement of ``kernel`` at ``nbytes``.

        Core placements charge ``(base + per_byte * n) / frequency``;
        the ASIC (when this DPU profile carries the kernel's
        accelerator kind) charges ``setup + n / throughput``.  A
        kernel without an accelerator simply has no ``"asic"`` entry.
        """
        record = self.costs.kernel(kernel)
        estimates = {
            "host": PlacementEstimate(
                "host",
                self.costs.cpu_cycles(kernel, int(nbytes), "host")
                / self.host.frequency_hz,
                self.costs.cpu_cycles(kernel, int(nbytes), "host"),
            ),
            "arm": PlacementEstimate(
                "arm",
                self.costs.cpu_cycles(kernel, int(nbytes), "dpu")
                / self.dpu.arm_frequency_hz,
                0.0,
            ),
        }
        if record.asic_kind is not None:
            spec = self.dpu.accelerator_spec(record.asic_kind)
            if spec is not None:
                estimates["asic"] = PlacementEstimate(
                    "asic",
                    spec.setup_latency_s
                    + nbytes / spec.throughput_bytes_per_s,
                    0.0,
                )
        return estimates

    def recommend(self, kernel: str, nbytes: float) -> Recommendation:
        """The latency-argmin placement with its deltas.

        Ties break toward the placement order host < arm < asic only
        through the deterministic sort key (latency, placement name),
        so repeated runs always agree.
        """
        estimates = self.estimate(kernel, nbytes)
        best = min(estimates.values(),
                   key=lambda e: (e.latency_s, e.placement))
        host = estimates["host"]
        return Recommendation(
            kernel=kernel,
            nbytes=nbytes,
            placement=best.placement,
            estimates=estimates,
            latency_delta_vs_host_s=best.latency_s - host.latency_s,
            host_cycles_saved_per_call=(host.host_cycles
                                        - best.host_cycles),
        )

    # -- the online path -----------------------------------------------------

    def advise(self, report) -> Dict[str, Dict[str, float]]:
        """Recommendations from an attribution report's kernel census.

        One row per observed ``(kernel, device)`` aggregate — keyed
        ``"kernel@device"`` — sized by the *measured* mean payload.
        Numeric-only rows, so the result drops straight into a bench
        artifact's nested part.
        """
        rows: Dict[str, Dict[str, float]] = {}
        for (kernel, device), obs in sorted(report.kernels.items()):
            try:
                rec = self.recommend(kernel, obs.mean_bytes)
            except KeyError:
                continue            # a custom kernel we cannot price
            current = _DEVICE_TO_PLACEMENT.get(device)
            current_est = (rec.estimates.get(current)
                           if current else None)
            rows[f"{kernel}@{device}"] = {
                "calls": float(obs.calls),
                "mean_bytes": obs.mean_bytes,
                "observed_mean_s": obs.mean_latency_s,
                "recommended_" + rec.placement: 1.0,
                "est_latency_s": rec.estimates[rec.placement]
                .latency_s,
                "est_latency_delta_vs_host_s":
                    rec.latency_delta_vs_host_s,
                "host_cycles_saved_per_call":
                    rec.host_cycles_saved_per_call,
                "already_recommended": float(
                    current == rec.placement),
                "est_gain_vs_current_s": (
                    current_est.latency_s
                    - rec.estimates[rec.placement].latency_s
                    if current_est is not None else 0.0),
            }
        return rows

    def __repr__(self) -> str:
        return (f"OffloadAdvisor(host={self.host.name}, "
                f"dpu={self.dpu.name})")


#: CE placement attribute -> advisor placement name.
_DEVICE_TO_PLACEMENT: Dict[str, Optional[str]] = {
    "host_cpu": "host",
    "dpu_cpu": "arm",
    "dpu_asic": "asic",
}
