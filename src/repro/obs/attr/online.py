"""Continuous attribution riding the telemetry plane's scrape loop.

An :class:`AttributionCollector` hangs off a
:class:`~repro.obs.plane.ClusterTelemetry` (``plane.attribution = …``)
the same way the SLO monitor and flight recorder do.  Each scrape it
*incrementally* scans every node's newly finished spans — the
``Tracer.spans`` list is append-only in finish order, so a per-node
cursor suffices — attributes any request root that just closed, and
folds the resulting ledgers into:

* per-window attribution snapshots (category seconds per node),
  bounded by the plane's sliding ``window``;
* a cumulative :class:`~.criticalpath.AttributionReport`;
* the sliding-window top-k bottleneck ranking
  (:meth:`top_bottlenecks`) that the flight recorder embeds in
  incident bundles, so an SLO page answers *where did the time go*.

Like the rest of the plane, the collector only ever reads spans; it
never yields, sleeps, or charges cycles — attribution-on runs stay
byte-identical to attribution-off runs (the ``attr`` experiment's
control twin asserts this).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Tuple

from .criticalpath import (
    AttributionReport,
    KernelObservation,
    RequestAttribution,
    SpanIndex,
    attribute_request,
)

__all__ = ["AttributionCollector"]


class AttributionCollector:
    """Incremental, windowed request attribution for one plane."""

    def __init__(self, window: int = 8,
                 root_name: str = "dds.request"):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.root_name = root_name
        #: every attributed request, in root-finish scan order
        self.requests: List[RequestAttribution] = []
        #: (kernel, device) -> cumulative kernel observation
        self.kernels: Dict[Tuple[str, str], KernelObservation] = {}
        #: last ``window`` per-scrape summaries, oldest first; each is
        #: {node: {category: seconds}} for roots finished that window
        self.windows: deque = deque(maxlen=window)
        self._cursors: Dict[str, int] = {}
        self._pending_roots: List[Tuple[str, int]] = []

    # -- the scrape hook -----------------------------------------------------

    def collect(self, plane) -> Dict[str, Dict[str, float]]:
        """Process spans finished since the last scrape.

        Called by :meth:`ClusterTelemetry.scrape`; safe to call by
        hand (tests, one-shot post-run attribution).  Returns this
        window's ``{node: {category: seconds}}`` summary.
        """
        tracers = plane.tracers()
        fresh_roots: List[Tuple[str, int]] = []
        for node, tracer in tracers:
            cursor = self._cursors.get(node, 0)
            spans = tracer.spans          # finished, append-only
            for span in spans[cursor:]:
                if span.name == self.root_name:
                    fresh_roots.append((node, span.span_id))
                elif span.name.startswith("ce.kernel."):
                    self._observe_kernel(span)
            self._cursors[node] = len(spans)

        window_summary: Dict[str, Dict[str, float]] = {}
        roots = self._pending_roots + fresh_roots
        self._pending_roots = []
        if roots:
            # One index per scrape covers every root attributed in
            # it; descendants always finish before (or adopt across
            # nodes no later than) the scrape that sees the root.
            index = SpanIndex(tracers)
            for root_key in roots:
                if index.parent_key(root_key) is not None:
                    continue          # an adopted remote subtree
                attribution = attribute_request(index, root_key)
                self.requests.append(attribution)
                ledger = window_summary.setdefault(
                    attribution.node, {})
                for category, seconds in \
                        attribution.segments.items():
                    ledger[category] = (ledger.get(category, 0.0)
                                        + seconds)
        self.windows.append(window_summary)
        return window_summary

    def _observe_kernel(self, span) -> None:
        kernel = span.name[len("ce.kernel."):]
        device = str(span.attrs.get("device", "unknown"))
        observation = self.kernels.get((kernel, device))
        if observation is None:
            observation = self.kernels[(kernel, device)] = \
                KernelObservation(kernel, device)
        observation.add(span)

    # -- queries -------------------------------------------------------------

    def report(self) -> AttributionReport:
        """Everything attributed so far, as one report."""
        return AttributionReport(list(self.requests),
                                 dict(self.kernels))

    def top_bottlenecks(self, k: int = 5
                        ) -> List[Tuple[str, str, float]]:
        """Top-k ``(node, category, seconds)`` over the sliding window.

        Deterministic: ties break by ``(node, category)``.
        """
        sums: Dict[Tuple[str, str], float] = {}
        for summary in self.windows:
            for node, ledger in summary.items():
                for category, seconds in ledger.items():
                    key = (node, category)
                    sums[key] = sums.get(key, 0.0) + seconds
        rows = [(node, category, seconds)
                for (node, category), seconds in sums.items()]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows[:k]

    def window_summary(self, k: int = 5) -> Dict[str, Any]:
        """The breach-window summary flight recorder bundles embed."""
        return {
            "requests_attributed": len(self.requests),
            "windows": len(self.windows),
            "top_bottlenecks": [
                {"node": node, "category": category, "seconds": s}
                for node, category, s in self.top_bottlenecks(k)
            ],
            "latest_window": (dict(self.windows[-1])
                              if self.windows else {}),
        }

    def __repr__(self) -> str:
        return (f"AttributionCollector({len(self.requests)} requests, "
                f"{len(self.windows)} windows)")
