"""Latency attribution: critical paths, resource ledgers, advice.

``repro.obs.attr`` answers the question the span substrate only
gestures at: *where did each request's latency go, and was the
placement worth it?*  Three layers:

* :mod:`.criticalpath` — walks finished span trees (including
  cross-node merged traces with ``remote_parent`` links) and
  decomposes each DDS request's end-to-end latency into a *conserved*
  ledger of per-resource segments (DPU Arm, ASIC, NIC wire, PCIe,
  SSD, host CPU, forwarding, retry, queue-wait).  The segments of a
  request always sum to its measured latency — exactly, by
  construction — which the ``AT.*`` bench claims assert.
* :mod:`.online` — :class:`AttributionCollector`, the continuous
  profiler that rides the telemetry plane's scrape loop: per-window
  attribution snapshots, sliding-window top-k bottleneck ranking per
  node/shard, and the breach-window summary the flight recorder
  embeds in incident bundles.
* :mod:`.advisor` — :class:`OffloadAdvisor`, the quantitative
  offload advisor (ROADMAP item 3, v0): reads attribution plus the
  :mod:`repro.hardware.costs` price curves and recommends a
  placement (host / arm / asic) per kernel with estimated latency
  and host-core deltas.

Everything here only *reads* spans and registries — attribution can
never perturb simulated results (the ``attr`` bench experiment's
control twin proves it byte for byte).
"""

from .advisor import OffloadAdvisor, PlacementEstimate, Recommendation
from .criticalpath import (
    CATEGORIES,
    AttributionReport,
    RequestAttribution,
    SpanIndex,
    attribute_request,
    build_report,
    categorize,
)
from .online import AttributionCollector

__all__ = [
    "CATEGORIES",
    "AttributionCollector",
    "AttributionReport",
    "OffloadAdvisor",
    "PlacementEstimate",
    "Recommendation",
    "RequestAttribution",
    "SpanIndex",
    "attribute_request",
    "build_report",
    "categorize",
]
