"""A unified, hierarchically-named metrics registry.

The simulation's collectors (:class:`~repro.sim.stats.Counter`,
:class:`~repro.sim.stats.Tally`, :class:`~repro.sim.stats.TimeWeighted`)
are created all over the hardware and engine models.  The registry
gives them one home: dotted hierarchical names (``se.cache.hits``,
``ne.tcp.tx_bytes``), optional labels (``engine="dpu"``), a single
``snapshot()`` for report tables, and duplicate-name protection.

Two ways in:

* ``registry.counter("se.host_ops")`` — create (or fetch) an
  instrument owned by the registry;
* ``registry.register("se.host_ops", existing_counter)`` — adopt an
  instrument that already lives on an engine, so existing code keeps
  its cheap attribute access while reports read everything from one
  place.  Adoption is idempotent for the same object and an error for
  a different one (no silent shadowing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..sim.stats import Counter, Tally, TimeWeighted

__all__ = ["MetricsRegistry"]

Instrument = Union[Counter, Tally, TimeWeighted]


def _qualify(name: str, labels: Dict[str, str]) -> str:
    """The registry key: ``name{k=v,...}`` with labels sorted."""
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}"
                        for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Owns named metric instruments and renders unified snapshots."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- create-or-fetch ----------------------------------------------------

    def _get_or_make(self, name: str, labels: Dict[str, str],
                     kind: type, factory) -> Instrument:
        key = _qualify(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {key!r} is a "
                    f"{type(existing).__name__}, not a {kind.__name__}"
                )
            return existing
        instrument = factory(key)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a monotonic counter named ``name``."""
        return self._get_or_make(name, labels, Counter, Counter)

    def tally(self, name: str, max_samples: Optional[int] = None,
              **labels: str) -> Tally:
        """Get or create a sample tally (optionally reservoir-bounded)."""
        return self._get_or_make(
            name, labels, Tally,
            lambda key: Tally(key, max_samples=max_samples),
        )

    def gauge(self, name: str, start_time: float = 0.0,
              **labels: str) -> TimeWeighted:
        """Get or create a time-weighted level (queue depth, cores)."""
        return self._get_or_make(
            name, labels, TimeWeighted,
            lambda key: TimeWeighted(key, start_time=start_time),
        )

    # -- adoption ------------------------------------------------------------

    def register(self, name: str, instrument: Instrument,
                 **labels: str) -> Instrument:
        """Adopt an existing instrument under ``name``.

        Re-registering the *same* object is a no-op; registering a
        *different* object under an occupied name raises ``ValueError``
        so two components cannot silently share a metric name.
        """
        if not isinstance(instrument, (Counter, Tally, TimeWeighted)):
            raise TypeError(
                f"cannot register {type(instrument).__name__} as a "
                "metric instrument"
            )
        key = _qualify(name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if existing is instrument:
                return instrument
            raise ValueError(
                f"metric name {key!r} already registered to a "
                "different instrument"
            )
        self._instruments[key] = instrument
        return instrument

    # -- reading --------------------------------------------------------------

    def get(self, name: str, **labels: str) -> Optional[Instrument]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(_qualify(name, labels))

    def names(self) -> List[str]:
        """All registered metric names (with labels), sorted."""
        return sorted(self._instruments)

    def snapshot(self, now: float,
                 prefix: Optional[str] = None) -> Dict[str, float]:
        """Flatten every instrument into one ``{metric: value}`` dict.

        Counters appear under their plain name; tallies expand to
        ``.count/.mean/.p50/.p99``; levels to ``.avg/.peak`` — the
        same convention as :class:`~repro.sim.stats.MetricSet`.  Keys
        are emitted in sorted order (deterministic across runs, and
        ``dict`` preserves insertion order), so artifacts and tables
        built from a snapshot list metrics stably.  ``prefix`` keeps
        only instruments whose registered name starts with it
        (``prefix="se."`` selects the Storage Engine).
        """
        out: Dict[str, float] = {}
        for key in sorted(self._instruments):
            if prefix is not None and not key.startswith(prefix):
                continue
            instrument = self._instruments[key]
            if isinstance(instrument, Counter):
                out[key] = instrument.value
            elif isinstance(instrument, Tally):
                out[f"{key}.count"] = instrument.count
                out[f"{key}.mean"] = instrument.mean
                out[f"{key}.p50"] = instrument.p50
                out[f"{key}.p99"] = instrument.p99
            else:
                out[f"{key}.avg"] = instrument.average(now)
                out[f"{key}.peak"] = instrument.peak
        return out

    def diff(self, prev_snapshot: Dict[str, float], now: float,
             prefix: Optional[str] = None) -> Dict[str, float]:
        """Per-window view of the registry against a prior snapshot.

        Counters (and tally ``.count`` streams) are *rates of events*,
        so they come back as deltas since ``prev_snapshot``; everything
        level-like (tally ``.mean/.p50/.p99``, gauge ``.avg/.peak``)
        is a last-value read.  A metric born after ``prev_snapshot``
        was taken diffs against 0, so the scrape loop (and the future
        offload advisor) never special-cases registration order.  Keys
        follow the :meth:`snapshot` naming convention exactly.
        """
        out: Dict[str, float] = {}
        for key in sorted(self._instruments):
            if prefix is not None and not key.startswith(prefix):
                continue
            instrument = self._instruments[key]
            if isinstance(instrument, Counter):
                out[key] = instrument.value - prev_snapshot.get(key, 0.0)
            elif isinstance(instrument, Tally):
                out[f"{key}.count"] = (
                    instrument.count
                    - prev_snapshot.get(f"{key}.count", 0.0)
                )
                out[f"{key}.mean"] = instrument.mean
                out[f"{key}.p50"] = instrument.p50
                out[f"{key}.p99"] = instrument.p99
            else:
                out[f"{key}.avg"] = instrument.average(now)
                out[f"{key}.peak"] = instrument.peak
        return out

    def render_table(self, now: float,
                     prefix: Optional[str] = None) -> str:
        """The snapshot as an aligned two-column text table.

        Rows come out in the snapshot's sorted order, so the same
        registry always renders the same table.  ``prefix`` narrows
        the table to one subsystem (``prefix="se."``).
        """
        snapshot = self.snapshot(now, prefix=prefix)
        if not snapshot:
            if prefix is not None:
                return f"(no metrics registered under {prefix!r})"
            return "(no metrics registered)"
        width = max(len(key) for key in snapshot)
        width = max(width, len("metric"))
        lines = [f"{'metric'.ljust(width)}  value",
                 f"{'-' * width}  {'-' * 12}"]
        for key, value in snapshot.items():
            if isinstance(value, float) and value != int(value):
                rendered = f"{value:.6g}"
            else:
                rendered = f"{value:g}" if isinstance(value, float) \
                    else str(value)
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)
