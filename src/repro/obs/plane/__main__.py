"""Demo driver: one observed cluster incident, exported as artifacts.

``python -m repro.obs.plane`` runs the OB benchmark scenario (three
DDS nodes, a mid-run DPU crash on ``node1``, the telemetry plane
scraping throughout) and writes the two files the nightly CI job
uploads:

* ``--trace-out``  — the merged cluster Chrome trace (one process
  per node), loadable in Perfetto / ``chrome://tracing``;
* ``--bundle-out`` — the first flight-recorder incident bundle
  (``repro.obs/incident`` schema v1) dumped on the SLO breach.

Without flags it still runs the scenario and prints the summary, so
the module doubles as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the demo scenario; write the requested artifact files."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.plane",
        description="run one observed cluster incident and export "
                    "its trace and incident bundle")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the merged cluster Chrome trace")
    parser.add_argument("--bundle-out", metavar="PATH",
                        help="write the first incident bundle")
    arguments = parser.parse_args(argv)

    # Imported here: the bench package pulls in every experiment
    # module, which this package must not do at import time.
    from ..trace import write_merged_chrome
    from .collector import ClusterTelemetry
    from .recorder import FlightRecorder
    from .slo import SloMonitor
    from repro.bench.experiments_obs import (
        RETAIN_S,
        SCRAPE_INTERVAL_S,
        default_slos,
        obs_scenario,
    )

    plane = ClusterTelemetry(tracing=True, name="obs-demo",
                             scrape_interval_s=SCRAPE_INTERVAL_S)
    plane.monitor = SloMonitor(default_slos())
    plane.recorder = FlightRecorder(retain_s=RETAIN_S)
    result = obs_scenario(plane)

    violations = plane.monitor.violations
    incidents = plane.recorder.incidents
    print(f"scenario: ok={result['ok']} errors={result['errors']} "
          f"pending={result['pending']}")
    print(f"plane: {len(plane.snapshots)} snapshots, "
          f"{len(violations)} SLO violations, "
          f"{len(incidents)} incidents recorded")

    if arguments.trace_out:
        count = write_merged_chrome(arguments.trace_out,
                                    plane.tracers())
        print(f"[trace: {count} events -> {arguments.trace_out}]")
    if arguments.bundle_out:
        if not incidents:
            print("no incident recorded; nothing to write",
                  file=sys.stderr)
            return 1
        with open(arguments.bundle_out, "w") as handle:
            json.dump(incidents[0], handle, indent=2, sort_keys=True)
        print(f"[bundle: {len(incidents[0]['snapshots'])} snapshots "
              f"-> {arguments.bundle_out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
