"""The SLO flight recorder: bounded history, incident bundles.

A :class:`FlightRecorder` rides the telemetry plane's scrape loop: it
keeps a ring of the last ``retain_s`` sim-seconds of snapshots, and
when a trigger fires — an SLO breach or an injected fault — it dumps
a cross-node *incident bundle*: the retained snapshot window, the
violations that fired, and each node's recent spans (anything that
ended inside the retention window, plus everything still open).  The
bundle is a plain JSON-able dict, so a nightly CI job can upload one
as a build artifact.

Bundle layout (``schema repro.obs/incident`` v1)::

    {
      "schema": "repro.obs/incident", "schema_version": 1,
      "reason": "slo_violation" | "fault_injected",
      "t_s": 4.5e-3, "retain_s": 2e-3,
      "violations": [{spec, node, t_s, version, value, ...}],
      "snapshots": [TelemetrySnapshot.to_dict(), ...],
      "nodes": {
        "node0": {"spans": [Span.to_dict(), ...], "open_spans": 2},
        ...
      },
      "attribution": {...}   # breach-window attribution summary,
                             # present when plane.attribution is set
    }
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["FlightRecorder"]

SCHEMA_NAME = "repro.obs/incident"
SCHEMA_VERSION = 1


class FlightRecorder:
    """Bounded telemetry history that dumps on incident triggers."""

    def __init__(self, retain_s: float = 2.0e-3,
                 max_incidents: int = 8):
        if retain_s <= 0:
            raise ValueError("retain_s must be positive")
        if max_incidents < 1:
            raise ValueError("max_incidents must be >= 1")
        self.retain_s = retain_s
        self.max_incidents = max_incidents
        self._ring: deque = deque()
        #: captured incident bundles, in trigger order (bounded)
        self.incidents: List[Dict[str, Any]] = []

    # -- history -------------------------------------------------------------

    def observe(self, snapshot) -> None:
        """Add one scrape to the ring; age out anything too old."""
        self._ring.append(snapshot)
        horizon = snapshot.t_s - self.retain_s
        while self._ring and self._ring[0].t_s < horizon:
            self._ring.popleft()

    def retained(self) -> List[Any]:
        """The snapshots currently inside the retention window."""
        return list(self._ring)

    # -- incidents -----------------------------------------------------------

    def trigger(self, reason: str, plane,
                violations=()) -> Optional[Dict[str, Any]]:
        """Dump a cross-node incident bundle (None once at capacity).

        ``plane`` is the :class:`~repro.obs.plane.ClusterTelemetry`
        whose nodes supply the span history; capacity bounds both
        memory and bundle spam during a sustained breach.
        """
        if len(self.incidents) >= self.max_incidents:
            return None
        now = self._ring[-1].t_s if self._ring else 0.0
        horizon = now - self.retain_s
        nodes: Dict[str, Dict[str, Any]] = {}
        for name, telemetry in sorted(plane.nodes.items()):
            tracer = telemetry.tracer
            if not tracer.enabled:
                nodes[name] = {"spans": [], "open_spans": 0}
                continue
            recent = []
            open_spans = 0
            for span in tracer.all_spans():
                if span.end_s is None:
                    open_spans += 1
                    recent.append(span.to_dict())
                elif span.end_s >= horizon:
                    recent.append(span.to_dict())
            nodes[name] = {"spans": recent, "open_spans": open_spans}
        bundle = {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "reason": reason,
            "t_s": now,
            "retain_s": self.retain_s,
            "violations": [violation.to_dict()
                           for violation in violations],
            "snapshots": [snapshot.to_dict()
                          for snapshot in self._ring],
            "nodes": nodes,
        }
        attribution = getattr(plane, "attribution", None)
        if attribution is not None:
            bundle["attribution"] = attribution.window_summary()
        self.incidents.append(bundle)
        return bundle

    def write(self, path: str, index: int = -1) -> None:
        """Write one captured incident bundle as JSON."""
        if not self.incidents:
            raise ValueError("no incidents captured")
        with open(path, "w") as handle:
            json.dump(self.incidents[index], handle, indent=1,
                      sort_keys=True, default=str)
            handle.write("\n")

    def __repr__(self) -> str:
        return (f"FlightRecorder(retain={self.retain_s:g}s, "
                f"{len(self._ring)} snapshots, "
                f"{len(self.incidents)} incidents)")
