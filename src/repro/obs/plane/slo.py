"""Declarative SLOs evaluated over telemetry-plane scrape windows.

An :class:`SloSpec` names one derived series from the plane
(``goodput_ops_per_s``, ``p99_latency_s``, ...), a bound, and a
direction: ``kind="max"`` fires when the value exceeds the bound
(latency ceilings), ``kind="min"`` when it drops below (goodput
floors).  ``min_windows`` consecutive violating scrapes must accrue
before a violation fires, so one noisy window cannot page anyone.

The :class:`SloMonitor` is evaluated by
:meth:`~repro.obs.plane.ClusterTelemetry.scrape` on every window and
keeps the full violation history; the flight recorder uses fresh
violations as its dump trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["SloSpec", "SloMonitor", "SloViolation"]


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a derived plane series."""

    #: human name, e.g. ``"p99_latency_ms"`` or ``"goodput_floor"``
    name: str
    #: derived series to watch, e.g. ``"p99_latency_s"``
    metric: str
    #: the threshold, in the series' own unit
    bound: float
    #: ``"max"`` = violated above the bound, ``"min"`` = below it
    kind: str = "max"
    #: evaluate one node only (None: every node in the series)
    node: Optional[str] = None
    #: consecutive violating windows required before firing
    min_windows: int = 1

    def __post_init__(self):
        if self.kind not in ("max", "min"):
            raise ValueError(f"SLO kind must be max/min, got "
                             f"{self.kind!r}")
        if self.min_windows < 1:
            raise ValueError("min_windows must be >= 1")

    def violated_by(self, value: float) -> bool:
        """Whether one window's value breaks the objective."""
        return (value > self.bound if self.kind == "max"
                else value < self.bound)


@dataclass
class SloViolation:
    """One fired SLO breach (after ``min_windows`` accrued)."""

    spec: str
    node: str
    t_s: float
    version: int
    value: float
    bound: float
    kind: str
    windows: int = 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (flight-recorder bundles)."""
        return {"spec": self.spec, "node": self.node, "t_s": self.t_s,
                "version": self.version, "value": self.value,
                "bound": self.bound, "kind": self.kind,
                "windows": self.windows}


class SloMonitor:
    """Evaluates a set of specs against each scrape's derived series."""

    def __init__(self, specs: Iterable[SloSpec]):
        self.specs: Tuple[SloSpec, ...] = tuple(specs)
        #: every violation ever fired, in firing order
        self.violations: List[SloViolation] = []
        self._streaks: Dict[Tuple[str, str], int] = {}

    def evaluate(self, snapshot) -> List[SloViolation]:
        """Check every spec against one snapshot; return fresh breaches.

        A spec fires once per window while in breach (after its
        ``min_windows`` streak accrues); streaks reset the moment a
        window complies.
        """
        fired: List[SloViolation] = []
        for spec in self.specs:
            series = snapshot.derived.get(spec.metric, {})
            targets = ([spec.node] if spec.node is not None
                       else sorted(series))
            for node in targets:
                value = series.get(node)
                if value is None:
                    continue
                key = (spec.name, node)
                if spec.violated_by(value):
                    streak = self._streaks.get(key, 0) + 1
                    self._streaks[key] = streak
                    if streak >= spec.min_windows:
                        fired.append(SloViolation(
                            spec=spec.name, node=node,
                            t_s=snapshot.t_s,
                            version=snapshot.version, value=value,
                            bound=spec.bound, kind=spec.kind,
                            windows=streak))
                else:
                    self._streaks[key] = 0
        self.violations.extend(fired)
        return fired

    def first_violation(self, spec: Optional[str] = None
                        ) -> Optional[SloViolation]:
        """Earliest fired violation (optionally for one spec)."""
        for violation in self.violations:
            if spec is None or violation.spec == spec:
                return violation
        return None
