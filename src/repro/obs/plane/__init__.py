"""The live telemetry plane: cluster scraping, SLOs, flight recorder.

Three cooperating pieces, one per module:

* :class:`ClusterTelemetry` (:mod:`.collector`) — hands out per-node
  :class:`~repro.obs.telemetry.Telemetry` bundles, scrapes every
  node's registry on a sim-time interval, and derives the
  sliding-window series (shard heat, goodput, latency percentiles,
  host-core occupancy, breaker state) that online consumers read;
* :class:`SloSpec` / :class:`SloMonitor` (:mod:`.slo`) — declarative
  objectives evaluated each scrape window, emitting
  :class:`SloViolation` events;
* :class:`FlightRecorder` (:mod:`.recorder`) — a bounded ring of
  recent snapshots and spans, dumped as a cross-node incident bundle
  when an SLO breach or injected fault fires.

``python -m repro.obs.plane`` runs a small demo scenario and writes
the merged cluster trace + one incident bundle (the nightly CI
artifacts).
"""

from .collector import ClusterTelemetry, TelemetrySnapshot
from .recorder import FlightRecorder
from .slo import SloMonitor, SloSpec, SloViolation

__all__ = [
    "ClusterTelemetry",
    "FlightRecorder",
    "SloMonitor",
    "SloSpec",
    "SloViolation",
    "TelemetrySnapshot",
]
