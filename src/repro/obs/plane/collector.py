"""The live telemetry plane: cluster-wide scraping into snapshots.

:class:`ClusterTelemetry` is the multi-node counterpart of
:class:`~repro.obs.telemetry.Telemetry`: it hands out one per-node
telemetry bundle (``plane.node("node0")``) for the cluster to inject
into each :class:`~repro.core.dpdpu.DpdpuRuntime`, then — once
attached to a :class:`~repro.cluster.Cluster` — scrapes every node's
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed sim-time
interval into versioned :class:`TelemetrySnapshot` objects.

Each scrape also computes the derived sliding-window series the
future offload advisor and autoscaler consume:

* ``shard_heat`` — per-shard request deltas, summed across nodes;
* ``goodput_ops_per_s`` — per-node completed shard ops per second;
* ``p50_latency_s`` / ``p99_latency_s`` / ``p999_latency_s`` —
  per-node DDS service time;
* ``host_core_occupancy`` — host cores consumed by the data path
  (cycle delta / interval / frequency), the paper's headline metric;
* ``goodput_per_host_core`` — goodput divided by occupied host
  cores (floored at a milli-core), the offload-efficiency ratio;
* ``breaker_state`` — 0 closed / 1 open / 2 half-open;
* ``ontime_fraction`` — per-client on-time answer fraction, derived
  from the ``sli.*`` counters :class:`~repro.cluster.ClusterClient`
  registers when handed a plane — the user-facing signal server-side
  latency cannot provide (it never sees queueing upstream of the
  node, e.g. a saturated switch port).

When tracing is on, an :class:`~repro.obs.attr.AttributionCollector`
can be attached as ``plane.attribution`` — each scrape then folds
newly finished request spans into per-window attribution ledgers.

Zero-overhead-off is structural: a cluster built without a plane has
no per-node registries beyond the stock runtime ones and no scrape
process at all; with a plane attached, scraping only *reads*
instruments (never yields into hardware, never charges cycles), so
simulated results are unchanged — only observed.
"""

from __future__ import annotations

import itertools
import re
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import Telemetry
from ..trace import merge_chrome_events, write_merged_chrome

__all__ = ["ClusterTelemetry", "TelemetrySnapshot"]

#: matches the per-shard op counters ClusterDdsServer registers
_SHARD_OPS = re.compile(r"\.shard(\d+)\.ops$")

#: matches the per-tenant admission verdict counters the
#: AdmissionController registers (tenant.<name>.<verdict>)
_TENANT_VERDICT = re.compile(
    r"^tenant\.([^.{]+)\.(admitted|rejected|shed)$")

_BREAKER_STATES = {"closed": 0.0, "open": 1.0, "half_open": 2.0}


class TelemetrySnapshot:
    """One versioned scrape of every node's registry."""

    __slots__ = ("version", "t_s", "interval_s", "per_node", "deltas",
                 "derived")

    def __init__(self, version: int, t_s: float, interval_s: float,
                 per_node: Dict[str, Dict[str, float]],
                 deltas: Dict[str, Dict[str, float]],
                 derived: Dict[str, Dict[str, float]]):
        self.version = version
        self.t_s = t_s
        self.interval_s = interval_s
        #: node -> full flattened registry snapshot
        self.per_node = per_node
        #: node -> MetricsRegistry.diff against the previous scrape
        self.deltas = deltas
        #: series name -> {node or shard key: value} for this window
        self.derived = derived

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (flight-recorder bundles)."""
        return {
            "version": self.version,
            "t_s": self.t_s,
            "interval_s": self.interval_s,
            "per_node": {name: dict(snap)
                         for name, snap in self.per_node.items()},
            "deltas": {name: dict(delta)
                       for name, delta in self.deltas.items()},
            "derived": {name: dict(values)
                        for name, values in self.derived.items()},
        }

    def __repr__(self) -> str:
        return (f"TelemetrySnapshot(v{self.version} @ {self.t_s:g}s, "
                f"{len(self.per_node)} nodes)")


class ClusterTelemetry:
    """Per-node telemetry bundles plus the cluster scrape loop.

    Usage::

        plane = ClusterTelemetry(tracing=True, scrape_interval_s=5e-4)
        cluster = Cluster(env, 3, telemetry=plane)   # attaches itself
        plane.monitor = SloMonitor([...])            # optional
        plane.recorder = FlightRecorder(retain_s=2e-3)
        env.run(until=...)
        plane.latest().derived["goodput_ops_per_s"]
        plane.write_chrome("cluster_trace.json")     # merged trace

    One plane observes one cluster: per-node registries adopt
    engine instruments, so re-attaching would collide names.
    """

    def __init__(self, env=None, tracing: bool = False,
                 name: str = "cluster",
                 scrape_interval_s: float = 5.0e-4,
                 window: int = 8, max_snapshots: int = 512):
        if scrape_interval_s <= 0:
            raise ValueError("scrape interval must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self._env = env
        self.name = name
        self.tracing = bool(tracing)
        self.scrape_interval_s = scrape_interval_s
        self.window = window
        #: node name -> that node's Telemetry bundle
        self.nodes: Dict[str, Telemetry] = {}
        #: versioned scrapes, oldest first (bounded)
        self.snapshots: deque = deque(maxlen=max_snapshots)
        #: evaluated each scrape when set
        self.monitor = None
        self.recorder = None
        #: an AttributionCollector fed each scrape when set
        self.attribution = None
        self._versions = itertools.count(1)
        self._prev: Dict[str, Dict[str, float]] = {}
        self._prev_t: Optional[float] = None
        self._windows: Dict[str, Dict[str, deque]] = {}
        self._breakers: Dict[str, Any] = {}
        self._host_hz: Dict[str, float] = {}
        self._cluster = None
        self._running = False
        self._last_fault_total = 0.0

    # -- per-node bundles ----------------------------------------------------

    def node(self, name: str) -> Telemetry:
        """The telemetry bundle for node ``name`` (create on first use)."""
        telemetry = self.nodes.get(name)
        if telemetry is None:
            telemetry = Telemetry(self._env, tracing=self.tracing,
                                  name=name, node=name)
            self.nodes[name] = telemetry
        return telemetry

    @property
    def tracing_enabled(self) -> bool:
        """True when per-node tracers record spans."""
        return self.tracing

    def tracers(self) -> List[Tuple[str, Any]]:
        """(node, tracer) pairs for every tracing-enabled node."""
        return [(name, telemetry.tracer)
                for name, telemetry in sorted(self.nodes.items())
                if telemetry.tracer.enabled]

    # -- attachment and the scrape loop -------------------------------------

    def attach(self, cluster, start: bool = True) -> None:
        """Bind the plane to a built cluster and start scraping.

        ``Cluster(..., telemetry=plane)`` calls this automatically;
        call it yourself (``start=False`` to scrape manually) only
        when assembling nodes by hand.
        """
        if self._cluster is not None:
            raise ValueError(
                "ClusterTelemetry observes exactly one cluster; "
                "build a fresh plane per cluster")
        self._cluster = cluster
        self._env = cluster.env
        for node in cluster.nodes:
            self._breakers[node.name] = node.breaker
            self._host_hz[node.name] = node.server.host_cpu.frequency_hz
        if start:
            self.start()

    def start(self) -> None:
        """Launch the sim-time scrape process (idempotent)."""
        if self._running:
            return
        if self._env is None:
            raise ValueError("attach a cluster (or pass env) first")
        self._running = True
        self._prev_t = self._env.now
        self._env.process(self._scrape_loop(),
                          name=f"{self.name}-telemetry-scrape")

    def _scrape_loop(self):
        while True:
            yield self._env.timeout(self.scrape_interval_s)
            self.scrape()

    # -- one scrape ----------------------------------------------------------

    def scrape(self) -> TelemetrySnapshot:
        """Take one versioned snapshot across every node, now."""
        now = self._env.now if self._env is not None else 0.0
        interval = (now - self._prev_t
                    if self._prev_t is not None else 0.0)
        per_node: Dict[str, Dict[str, float]] = {}
        deltas: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.nodes):
            registry = self.nodes[name].metrics
            per_node[name] = registry.snapshot(now)
            deltas[name] = registry.diff(self._prev.get(name, {}), now)
        derived = self._derive(per_node, deltas, interval)
        snapshot = TelemetrySnapshot(next(self._versions), now,
                                     interval, per_node, deltas,
                                     derived)
        self.snapshots.append(snapshot)
        self._prev = per_node
        self._prev_t = now
        for metric, values in derived.items():
            windows = self._windows.setdefault(metric, {})
            for key, value in values.items():
                series = windows.get(key)
                if series is None:
                    series = windows[key] = deque(maxlen=self.window)
                series.append(value)
        if self.attribution is not None:
            self.attribution.collect(self)
        violations = (self.monitor.evaluate(snapshot)
                      if self.monitor is not None else [])
        if self.recorder is not None:
            self.recorder.observe(snapshot)
            if violations:
                self.recorder.trigger("slo_violation", self,
                                      violations=violations)
            fault_total = max(
                (snap.get("faults.injected", 0.0)
                 for snap in per_node.values()), default=0.0)
            if fault_total > self._last_fault_total:
                self.recorder.trigger("fault_injected", self)
            self._last_fault_total = fault_total
        return snapshot

    def _derive(self, per_node, deltas, interval):
        """The sliding-window series for one scrape window."""
        derived: Dict[str, Dict[str, float]] = {
            "goodput_ops_per_s": {},
            "p50_latency_s": {},
            "p99_latency_s": {},
            "p999_latency_s": {},
            "host_core_occupancy": {},
            "goodput_per_host_core": {},
            "breaker_state": {},
            "shard_heat": {},
            "tenant_admitted": {},
            "tenant_rejected": {},
            "tenant_shed": {},
            "ontime_fraction": {},
        }
        heat = derived["shard_heat"]
        for name, delta in deltas.items():
            prefix = f"dds.{name}."
            served = (delta.get(f"{prefix}shard_local", 0.0)
                      + delta.get(f"{prefix}shard_routed", 0.0)
                      - delta.get(f"{prefix}shard_errors", 0.0))
            goodput = served / interval if interval > 0 else 0.0
            derived["goodput_ops_per_s"][name] = goodput
            snap = per_node[name]
            derived["p50_latency_s"][name] = snap.get(
                f"{prefix}request_latency.p50", 0.0)
            derived["p99_latency_s"][name] = snap.get(
                f"{prefix}request_latency.p99", 0.0)
            # p999 needs the raw reservoir, not the snapshot keys
            latency = self.nodes[name].metrics.get(
                f"{prefix}request_latency")
            derived["p999_latency_s"][name] = (
                latency.p999 if latency is not None
                and hasattr(latency, "p999") else 0.0)
            hz = self._host_hz.get(name)
            if hz and interval > 0:
                occupancy = (delta.get("host.cpu.cycles", 0.0)
                             / interval / hz)
            else:
                occupancy = 0.0
            derived["host_core_occupancy"][name] = occupancy
            # floor at a milli-core so idle hosts don't divide by ~0
            derived["goodput_per_host_core"][name] = (
                goodput / max(occupancy, 1e-3))
            # Client-observed SLI (bundles registered by
            # ClusterClient): the fraction of this window's answers
            # that were ok *and* on time.  Windows with no answers
            # are skipped — no answers is "no data", not "all late".
            answered = delta.get(f"sli.{name}.answered", 0.0)
            if answered > 0:
                derived["ontime_fraction"][name] = (
                    delta.get(f"sli.{name}.ontime", 0.0) / answered)
            for key, value in delta.items():
                match = _SHARD_OPS.search(key)
                if match and value:
                    shard = match.group(1)
                    heat[shard] = heat.get(shard, 0.0) + value
                    continue
                verdict = _TENANT_VERDICT.match(key)
                if verdict and value:
                    series = derived[f"tenant_{verdict.group(2)}"]
                    tenant = verdict.group(1)
                    series[tenant] = series.get(tenant, 0.0) + value
        for name, breaker in sorted(self._breakers.items()):
            derived["breaker_state"][name] = _BREAKER_STATES.get(
                breaker.state, 0.0)
        return derived

    # -- online queries ------------------------------------------------------

    def latest(self) -> Optional[TelemetrySnapshot]:
        """The most recent snapshot (None before the first scrape)."""
        return self.snapshots[-1] if self.snapshots else None

    def series(self, metric: str, key: str) -> List[float]:
        """Sliding-window values of a derived series for one node.

        ``metric`` is a derived-series name (``"goodput_ops_per_s"``,
        ``"breaker_state"``, ...); ``key`` is a node name — or a shard
        number string for ``"shard_heat"``.  At most :attr:`window`
        entries, oldest first.
        """
        return list(self._windows.get(metric, {}).get(key, ()))

    def hot_shards(self, k: int = 5) -> List[Tuple[str, float]]:
        """Top-``k`` shards by request heat in the latest window."""
        latest = self.latest()
        if latest is None:
            return []
        heat = latest.derived.get("shard_heat", {})
        return sorted(heat.items(),
                      key=lambda kv: (-kv[1], int(kv[0])))[:k]

    def hot_tenants(self, k: int = 5,
                    verdict: str = "rejected") -> List[Tuple[str, float]]:
        """Top-``k`` tenants by admission ``verdict`` count, latest window.

        ``verdict`` is ``"admitted"``, ``"rejected"`` or ``"shed"``.
        Ties break by tenant name (same deterministic-ordering
        contract as :meth:`hot_shards`), so overload attribution in
        flight-recorder bundles replays identically.
        """
        if verdict not in ("admitted", "rejected", "shed"):
            raise ValueError(f"unknown verdict {verdict!r}")
        latest = self.latest()
        if latest is None:
            return []
        counts = latest.derived.get(f"tenant_{verdict}", {})
        return sorted(counts.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:k]

    def adopt_node(self, node) -> None:
        """Register a node added after :meth:`attach` (autoscaling).

        The scrape loop discovers the node's registry through its
        telemetry bundle automatically; this wires up the breaker
        series and the host-frequency divisor that ``attach`` set up
        for the original nodes.
        """
        self._breakers[node.name] = node.breaker
        self._host_hz[node.name] = node.server.host_cpu.frequency_hz

    # -- export (the CLI's trace-output protocol) ---------------------------

    def to_chrome_events(self) -> List[dict]:
        """The merged multi-node Chrome trace (one pid per node)."""
        return merge_chrome_events(self.tracers())

    def write_chrome(self, path: str) -> int:
        """Write the merged cluster trace; returns event count."""
        return write_merged_chrome(path, self.tracers())

    def flame_summary(self, max_rows: int = 60) -> str:
        """Per-node flame summaries, concatenated."""
        sections = []
        for name, tracer in self.tracers():
            sections.append(f"[{name}]\n"
                            + tracer.flame_summary(max_rows=max_rows))
        return "\n\n".join(sections) if sections \
            else "(no spans recorded)"

    def __repr__(self) -> str:
        return (f"ClusterTelemetry({self.name}, {len(self.nodes)} "
                f"nodes, {len(self.snapshots)} snapshots)")
