"""Sim-time tracing: causal spans across the three engines.

A :class:`Tracer` records *spans* — named intervals of simulated time
with attributes and parent links — so one DDS request can be followed
from its network arrival, through UDF parsing on a DPU core, into the
file service and down to the SSD, as a single causal tree.

Design constraints (they shape the whole API):

* **Zero overhead when off** — every instrumented call site uses the
  module-level :data:`NULL_TRACER` unless a real tracer was injected;
  the null tracer returns one shared no-op span, so the disabled path
  is a single attribute access and a constant return.
* **Deterministic** — span ids come from a per-tracer counter and all
  timestamps are ``env.now``; a tracer never yields, sleeps, or
  charges cycles, so enabling tracing cannot perturb simulation
  results (the benchmarks assert this).
* **Nestable inside simulation processes** — ``with tracer.span(...)``
  nests implicitly, but the implicit stack is kept *per simulation
  process* (keyed by ``env.active_process``): interleaved processes do
  not corrupt each other's trees.  Causality that crosses a process
  boundary (a request handed to a reactor through a ring) is expressed
  with an explicit ``parent=`` link and the begin/finish form.

Distributed traces: every tracer carries a ``node`` name and can mint
a :class:`TraceContext` — (trace id, parent span ref, origin node) —
small enough to ride inside a DDS request envelope.  The receiving
node's tracer *adopts* the context onto its local root span, and
:func:`merge_chrome_events` later stitches the per-node trees into one
cluster trace (one Chrome process per node) by resolving the recorded
``remote_parent`` refs into cross-process parent links.

Exports: Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
https://ui.perfetto.dev) and a plain-text flame summary.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "merge_chrome_events",
    "write_merged_chrome",
]


class Span:
    """One named interval of simulated time in the trace tree."""

    __slots__ = ("_tracer", "name", "category", "span_id", "parent_id",
                 "start_s", "end_s", "attrs", "_stack_key")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 span_id: int, parent_id: Optional[int],
                 start_s: float, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs
        self._stack_key: Any = None

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` (or ``__exit__``) has run."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds (to now while open)."""
        end = self.end_s if self.end_s is not None else self._tracer.now
        return end - self.start_s

    def annotate(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end_s is None:
            self.end_s = self._tracer.now
            self._tracer._on_finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (flight-recorder bundles, debugging)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"{self.end_s - self.start_s:.3g}s" if self.finished \
            else "open"
        return f"Span({self.name}#{self.span_id} {state})"


class TraceContext:
    """The propagatable identity of a distributed trace.

    Three strings, small enough to ride inside a request envelope:
    ``trace_id`` names the whole causal tree (the ref of its
    origin-node root span), ``parent_ref`` names the remote span the
    next hop should hang under (``"node:span_id"``), and ``origin`` is
    the node that started the trace.  The wire form is a plain dict so
    it survives the JSON request headers the DDS envelope already
    uses.
    """

    __slots__ = ("trace_id", "parent_ref", "origin")

    def __init__(self, trace_id: str, parent_ref: str, origin: str):
        self.trace_id = trace_id
        self.parent_ref = parent_ref
        self.origin = origin

    def to_wire(self) -> Dict[str, str]:
        """Encode for embedding in a request header."""
        return {"id": self.trace_id, "parent": self.parent_ref,
                "origin": self.origin}

    @classmethod
    def from_wire(cls, data: Any) -> Optional["TraceContext"]:
        """Decode a wire dict; ``None`` if absent or malformed."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("id")
        parent = data.get("parent")
        if not isinstance(trace_id, str) or not isinstance(parent, str):
            return None
        origin = data.get("origin")
        return cls(trace_id, parent,
                   origin if isinstance(origin, str) else "")

    def as_attrs(self) -> Dict[str, str]:
        """Span attributes a receiving tracer adopts onto its root."""
        return {"trace_id": self.trace_id,
                "remote_parent": self.parent_ref,
                "origin": self.origin}

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TraceContext)
                and self.to_wire() == other.to_wire())

    def __repr__(self) -> str:
        return (f"TraceContext(id={self.trace_id!r}, "
                f"parent={self.parent_ref!r}, origin={self.origin!r})")


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    name = "null"
    category = "null"
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    attrs: Dict[str, Any] = {}
    finished = True
    duration_s = 0.0

    def annotate(self, **attrs: Any) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def finish(self) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared no-op span every disabled call site receives.
NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing — the default everywhere.

    Instrumented code holds a reference to one of these unless real
    telemetry was injected, so the tracing-off cost of a call site is
    one method call returning a shared constant.
    """

    enabled = False
    node = "null"

    def bind(self, env) -> None:
        """No-op (a real tracer binds to the environment's clock)."""

    def ref(self, span: Any) -> str:
        """No-op; the empty ref."""
        return ""

    def context_for(self, span: Any) -> None:
        """No context when tracing is off."""
        return None

    def adopt(self, span: Any, context: Any) -> Any:
        """No-op; returns the span unchanged."""
        return span

    def span(self, name: str, category: str = "app",
             parent: Any = None, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def begin(self, name: str, category: str = "app",
              parent: Any = None, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def instant(self, name: str, category: str = "app",
                parent: Any = None, **attrs: Any) -> None:
        """No-op."""

    def to_chrome_events(self) -> List[dict]:
        """Nothing recorded, nothing exported."""
        return []

    def flame_summary(self, max_rows: int = 60) -> str:
        """Nothing recorded."""
        return "(no spans recorded)"


#: The process-wide disabled tracer instance.
NULL_TRACER = NullTracer()

#: Sentinel stack key for spans opened with :meth:`Tracer.begin`.
_DETACHED = object()


class Tracer:
    """Records sim-time spans and instants; exports trace files.

    A tracer must be *bound* to a simulation environment before spans
    are created (``Tracer(env)`` or :meth:`bind`); timestamps are read
    from ``env.now``.  Span ids are drawn from a deterministic counter
    so repeated runs produce identical traces.  ``node`` names the
    runtime this tracer observes; it tags every exported event and
    scopes span refs (``"node:span_id"``) in distributed traces.
    """

    enabled = True

    def __init__(self, env=None, node: str = "local"):
        self._env = env
        self.node = node
        self._ids = itertools.count(1)
        #: finished spans, in finish order (deterministic)
        self.spans: List[Span] = []
        #: open spans by id (finished spans are moved to ``spans``)
        self._open: Dict[int, Span] = {}
        #: instant events: (time_s, name, category, parent_id, attrs)
        self.instants: List[tuple] = []
        #: implicit nesting stacks, keyed per simulation process
        self._stacks: Dict[Any, List[Span]] = {}

    # -- clock -------------------------------------------------------------

    def bind(self, env) -> None:
        """Attach the tracer to a simulation environment's clock."""
        self._env = env

    @property
    def now(self) -> float:
        """Current simulated time (0.0 before binding)."""
        return self._env.now if self._env is not None else 0.0

    # -- span creation ------------------------------------------------------

    def _stack_key(self) -> Any:
        env = self._env
        return env.active_process if env is not None else None

    def _resolve_parent(self, parent: Any, key: Any) -> Optional[int]:
        if parent is not None:
            if parent is NULL_SPAN:
                return None
            return parent.span_id if isinstance(parent, Span) else parent
        stack = self._stacks.get(key)
        return stack[-1].span_id if stack else None

    def _make(self, name: str, category: str, parent: Any,
              attrs: Dict[str, Any]) -> Span:
        key = self._stack_key()
        span = Span(self, name, category, next(self._ids),
                    self._resolve_parent(parent, key), self.now, attrs)
        span._stack_key = key
        self._open[span.span_id] = span
        return span

    def span(self, name: str, category: str = "app",
             parent: Any = None, **attrs: Any) -> Span:
        """Open a span and push it on the current process's stack.

        Use as a context manager around work that starts and finishes
        in the same simulation process; spans opened inside the
        ``with`` body (in the same process) become children
        automatically.
        """
        span = self._make(name, category, parent, attrs)
        self._stacks.setdefault(span._stack_key, []).append(span)
        return span

    def begin(self, name: str, category: str = "app",
              parent: Any = None, **attrs: Any) -> Span:
        """Open a span without pushing it on the implicit stack.

        For work that finishes in a *different* process than it starts
        in (ring hand-offs, async requests): keep the returned span,
        link children to it with ``parent=``, and call ``finish()`` at
        the completion point.
        """
        span = self._make(name, category, parent, attrs)
        span._stack_key = _DETACHED
        return span

    def instant(self, name: str, category: str = "app",
                parent: Any = None, **attrs: Any) -> None:
        """Record a zero-duration event (decisions, cache hits)."""
        key = self._stack_key()
        self.instants.append(
            (self.now, name, category,
             self._resolve_parent(parent, key), attrs)
        )

    def _on_finish(self, span: Span) -> None:
        self._open.pop(span.span_id, None)
        self.spans.append(span)
        if span._stack_key is not _DETACHED:
            stack = self._stacks.get(span._stack_key)
            if stack is not None:
                try:
                    stack.remove(span)
                except ValueError:
                    pass
                if not stack:
                    del self._stacks[span._stack_key]

    # -- introspection -------------------------------------------------------

    def all_spans(self) -> List[Span]:
        """Finished spans plus still-open ones (deterministic order)."""
        return self.spans + [self._open[i] for i in sorted(self._open)]

    def categories(self) -> List[str]:
        """Distinct span categories seen so far, sorted."""
        return sorted({span.category for span in self.all_spans()})

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span`` among recorded spans."""
        return [s for s in self.all_spans()
                if s.parent_id == span.span_id]

    def ancestry(self, span: Span) -> List[Span]:
        """Parent chain from ``span``'s parent up to its root."""
        by_id = {s.span_id: s for s in self.all_spans()}
        chain: List[Span] = []
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            chain.append(parent)
            parent_id = parent.parent_id
        return chain

    # -- distributed context -------------------------------------------------

    def ref(self, span: Span) -> str:
        """Globally unique name for a local span: ``"node:span_id"``."""
        return f"{self.node}:{span.span_id}"

    def context_for(self, span: Span) -> TraceContext:
        """The :class:`TraceContext` to send along with a request.

        The trace id comes from ``span``'s local root: either the id
        this node itself adopted from an upstream hop (so multi-hop
        chains keep one id), or — when the trace starts here — the
        root's own ref.
        """
        chain = self.ancestry(span)
        root = chain[-1] if chain else span
        trace_id = root.attrs.get("trace_id")
        if not isinstance(trace_id, str):
            trace_id = self.ref(root)
        origin = root.attrs.get("origin")
        if not isinstance(origin, str) or not origin:
            origin = self.node
        return TraceContext(trace_id, self.ref(span), origin)

    def adopt(self, span: Span, context: Optional[TraceContext]) -> Span:
        """Hang ``span`` under a remote parent described by ``context``.

        The link is recorded as span attributes (``trace_id``,
        ``remote_parent``, ``origin``); :func:`merge_chrome_events`
        resolves ``remote_parent`` into a real cross-process parent
        link when per-node traces are merged.
        """
        if context is not None:
            span.annotate(**context.as_attrs())
        return span

    # -- export: Chrome trace_event JSON --------------------------------------

    def to_chrome_events(self) -> List[dict]:
        """The trace as a list of Chrome ``trace_event`` dicts.

        Spans become complete (``"ph": "X"``) events; each causal tree
        gets its own track (``tid``) so Perfetto renders one request
        per row with time-nested children.  Metadata events
        (``"ph": "M"``) name the process after :attr:`node` and each
        track after its root span, so merged multi-node traces are
        readable instead of a wall of bare pids.  An empty tracer
        exports no events at all (not even metadata).
        """
        spans = self.all_spans()
        by_id = {span.span_id: span for span in spans}

        def root_of(span: Span) -> int:
            seen = set()
            current = span
            while (current.parent_id is not None
                   and current.parent_id in by_id
                   and current.span_id not in seen):
                seen.add(current.span_id)
                current = by_id[current.parent_id]
            return current.span_id

        track_ids: Dict[int, int] = {}
        events: List[dict] = []
        for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
            root = root_of(span)
            tid = track_ids.setdefault(root, len(track_ids) + 1)
            end = span.end_s if span.end_s is not None else self.now
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append({
                "name": span.name, "cat": span.category, "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": max(end - span.start_s, 0.0) * 1e6,
                "pid": 1, "tid": tid, "args": args,
            })
        for when, name, category, parent_id, attrs in self.instants:
            parent = by_id.get(parent_id) if parent_id else None
            tid = (track_ids.get(root_of(parent), 0)
                   if parent is not None else 0)
            args = dict(attrs)
            if parent_id is not None:
                args["parent_id"] = parent_id
            events.append({
                "name": name, "cat": category, "ph": "i", "s": "t",
                "ts": when * 1e6, "pid": 1, "tid": tid, "args": args,
            })
        if not events:
            return []
        metadata = [{
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": self.node},
        }]
        for root_id, tid in sorted(track_ids.items(),
                                   key=lambda kv: kv[1]):
            root = by_id[root_id]
            metadata.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": f"{root.name}#{root_id}"},
            })
        return metadata + events

    def write_chrome(self, path: str) -> int:
        """Write Chrome trace JSON to ``path``; returns event count."""
        events = self.to_chrome_events()
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": "simulated seconds",
                          "source": "repro.obs.Tracer"},
        }
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, default=str)
        return len(events)

    # -- export: flame summary -------------------------------------------------

    def flame_summary(self, max_rows: int = 60) -> str:
        """Aggregate spans by tree path into a plain-text table.

        Rows are ``root;child;...`` paths with call counts, total
        (inclusive) time, and self (exclusive) time — a poor man's
        flame graph for terminals.
        """
        spans = self.all_spans()
        by_id = {span.span_id: span for span in spans}

        def path_of(span: Span) -> str:
            names = [span.name]
            parent_id = span.parent_id
            guard = 0
            while parent_id in by_id and guard < 128:
                parent = by_id[parent_id]
                names.append(parent.name)
                parent_id = parent.parent_id
                guard += 1
            return ";".join(reversed(names))

        totals: Dict[str, List[float]] = {}
        child_time: Dict[int, float] = {}
        for span in spans:
            if span.parent_id is not None:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0)
                    + span.duration_s
                )
        for span in spans:
            path = path_of(span)
            row = totals.setdefault(path, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += span.duration_s
            row[2] += max(
                span.duration_s - child_time.get(span.span_id, 0.0),
                0.0,
            )
        if not totals:
            return "(no spans recorded)"
        ordered = sorted(totals.items(),
                         key=lambda kv: (-kv[1][1], kv[0]))[:max_rows]
        width = max(len(path) for path, _ in ordered)
        width = max(width, len("span path"))
        lines = [
            f"{'span path'.ljust(width)}  {'count':>7}  "
            f"{'total_s':>12}  {'self_s':>12}",
            f"{'-' * width}  {'-' * 7}  {'-' * 12}  {'-' * 12}",
        ]
        for path, (count, total, self_time) in ordered:
            lines.append(
                f"{path.ljust(width)}  {count:>7d}  "
                f"{total:>12.6g}  {self_time:>12.6g}"
            )
        return "\n".join(lines)


# -- multi-node merge --------------------------------------------------------


def _named_tracers(
    tracers: Union[Mapping[str, "Tracer"],
                   Iterable[Tuple[str, "Tracer"]]],
) -> List[Tuple[str, "Tracer"]]:
    if isinstance(tracers, Mapping):
        return sorted(tracers.items())
    return list(tracers)


def merge_chrome_events(
    tracers: Union[Mapping[str, "Tracer"],
                   Iterable[Tuple[str, "Tracer"]]],
) -> List[dict]:
    """Merge per-node tracers into one cluster-wide Chrome trace.

    Each node becomes its own Chrome process (``pid``) named via
    ``process_name`` metadata.  Span ids are remapped into one global
    namespace, and every ``remote_parent`` ref recorded by
    :meth:`Tracer.adopt` is resolved into a concrete cross-process
    ``parent_id`` — so a forwarded request renders (and validates) as
    a single connected tree.
    """
    items = _named_tracers(tracers)
    global_ids: Dict[Tuple[str, int], int] = {}
    counter = itertools.count(1)
    for node, tracer in items:
        for span in tracer.all_spans():
            global_ids[(node, span.span_id)] = next(counter)

    merged: List[dict] = []
    for pid, (node, tracer) in enumerate(items, start=1):
        for event in tracer.to_chrome_events():
            event = dict(event)
            event["pid"] = pid
            args = event.get("args")
            if isinstance(args, dict):
                args = dict(args)
                local_id = args.get("span_id")
                if isinstance(local_id, int):
                    args["span_id"] = global_ids[(node, local_id)]
                parent_id = args.get("parent_id")
                if isinstance(parent_id, int):
                    args["parent_id"] = global_ids[(node, parent_id)]
                remote = args.get("remote_parent")
                if isinstance(remote, str) and ":" in remote:
                    peer, _, span_id = remote.rpartition(":")
                    try:
                        resolved = global_ids.get((peer, int(span_id)))
                    except ValueError:
                        resolved = None
                    if resolved is not None:
                        args["parent_id"] = resolved
                event["args"] = args
            merged.append(event)
    return merged


def write_merged_chrome(
    path: str,
    tracers: Union[Mapping[str, "Tracer"],
                   Iterable[Tuple[str, "Tracer"]]],
) -> int:
    """Write a merged multi-node Chrome trace; returns event count."""
    events = merge_chrome_events(tracers)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated seconds",
                      "source": "repro.obs.merge_chrome_events"},
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, default=str)
    return len(events)
