"""Metric-by-metric regression comparison of two benchmark artifacts.

``python -m repro.bench --compare BASELINE.json CANDIDATE.json``
walks every numeric metric both artifacts carry (every sweep row,
table metric, and nested-config metric) and flags values that drifted
outside a per-metric tolerance band.  The simulation is deterministic,
so simulated metrics from the same code match exactly and any drift
is a real behavior change.  Wall-clock attributions vary by machine
but are budgeted deliberately: exceeding 2x the baseline is a hard
regression, while the ``perf`` kernel microbenchmarks (pure real-time
rates) only ever warn.

Tolerances are rules — ``(fnmatch pattern, rel_tol, abs_tol,
severity)`` matched against the metric path
(``fig2.storage_cpu[x=450].kernel_cores``) — first match wins, so a
caller can pin one noisy metric loose while keeping the default
tight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ToleranceRule",
    "DEFAULT_TOLERANCES",
    "Delta",
    "ComparisonReport",
    "AttributionShift",
    "attribution_shifts",
    "compare",
    "render_comparison",
    "render_attribution_shifts",
]

OK, WARN, REGRESSION = "ok", "warn", "regression"


@dataclass(frozen=True)
class ToleranceRule:
    """One tolerance band, matched against metric paths."""

    pattern: str                 # fnmatch over the metric path
    rel_tol: float               # allowed |delta| / |baseline|
    abs_tol: float = 1e-12      # slack for near-zero baselines
    severity: str = REGRESSION  # what exceeding the band means
    one_sided: bool = False     # only flag candidate > baseline
                                # (budgets: faster is never a fail)


#: Order matters: first matching rule wins.
DEFAULT_TOLERANCES: Tuple[ToleranceRule, ...] = (
    # The kernel microbenchmarks measure real time by design: their
    # rates swing with machine and load, so they only ever warn.
    ToleranceRule("perf.*", rel_tol=1.0, abs_tol=1.0,
                  severity=WARN),
    # The suite-total wall clock is the CI perf budget: the committed
    # baseline records what the whole run costs, and a candidate
    # exceeding 1.5x that total hard-fails the gate.  Tighter than
    # the per-experiment band because per-experiment jitter averages
    # out over the suite; one-sided because a faster suite is the
    # goal, not a regression.
    ToleranceRule("total_wall_clock_s", rel_tol=0.5, abs_tol=2.0,
                  severity=REGRESSION, one_sided=True),
    # Wall clock is intentional now (the fast-path work budgets it):
    # a generous 2x-baseline hard bound catches real perf regressions
    # while absorbing machine-to-machine variance.  The band is
    # symmetric in |drift|, but an improvement can never trip it
    # (|candidate - baseline| < baseline whenever candidate >= 0).
    ToleranceRule("*.wall_clock_s", rel_tol=1.0, abs_tol=1.0,
                  severity=REGRESSION),
    # Simulated metrics are deterministic; allow a small band so
    # intentional calibration tweaks don't trip on rounding.
    ToleranceRule("*", rel_tol=0.05, abs_tol=1e-9),
)


@dataclass
class Delta:
    """One compared metric."""

    path: str
    baseline: Optional[float]
    candidate: Optional[float]
    status: str                  # ok / warn / regression
    note: str = ""

    @property
    def rel_change(self) -> float:
        if self.baseline is None or self.candidate is None:
            return math.nan
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else math.inf
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class ComparisonReport:
    """Everything ``--compare`` found."""

    deltas: List[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == REGRESSION]

    @property
    def warnings(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == WARN]

    @property
    def ok(self) -> bool:
        return not self.regressions


# -- metric flattening ------------------------------------------------------


def _iter_metrics(artifact: Dict[str, Any],
                  ) -> Iterator[Tuple[str, float]]:
    """Yield ``(path, value)`` for every numeric metric."""
    total = artifact.get("total_wall_clock_s")
    if total is not None:
        yield "total_wall_clock_s", total
    for exp_key in sorted(artifact.get("experiments", {})):
        entry = artifact["experiments"][exp_key]
        wall = entry.get("wall_clock_s")
        if wall is not None:
            yield f"{exp_key}.wall_clock_s", wall
        for part_name in sorted(entry.get("parts", {})):
            part = entry["parts"][part_name]
            prefix = f"{exp_key}.{part_name}"
            kind = part.get("type")
            if kind == "sweep":
                for row in part["rows"]:
                    for name in sorted(row["values"]):
                        yield (f"{prefix}[x={row['x']:g}].{name}",
                               row["values"][name])
            elif kind == "table":
                for name in sorted(part["values"]):
                    yield f"{prefix}.{name}", part["values"][name]
            elif kind == "nested":
                for config in sorted(part["rows"]):
                    for name in sorted(part["rows"][config]):
                        yield (f"{prefix}.{config}.{name}",
                               part["rows"][config][name])


def _rule_for(path: str,
              tolerances: Tuple[ToleranceRule, ...]) -> ToleranceRule:
    for rule in tolerances:
        if fnmatchcase(path, rule.pattern):
            return rule
    return ToleranceRule("*", rel_tol=0.0)


# -- comparison -------------------------------------------------------------


def compare(baseline: Dict[str, Any], candidate: Dict[str, Any],
            tolerances: Tuple[ToleranceRule, ...] = DEFAULT_TOLERANCES,
            ) -> ComparisonReport:
    """Diff two artifacts metric by metric.

    A metric present in the baseline but missing from the candidate
    is a regression (coverage shrank); a metric only the candidate
    has is a warning (new coverage — bless a new baseline to adopt
    it).  NaN in either artifact never matches anything and is
    reported as a warning.
    """
    report = ComparisonReport()
    base_metrics = dict(_iter_metrics(baseline))
    cand_metrics = dict(_iter_metrics(candidate))
    for path in sorted(set(base_metrics) | set(cand_metrics)):
        base = base_metrics.get(path)
        cand = cand_metrics.get(path)
        if base is None:
            report.deltas.append(Delta(
                path, None, cand, WARN,
                note="new metric (not in baseline)"))
            continue
        if cand is None:
            report.deltas.append(Delta(
                path, base, None, REGRESSION,
                note="metric disappeared"))
            continue
        if math.isnan(base) or math.isnan(cand):
            status = OK if (math.isnan(base) and math.isnan(cand)) \
                else WARN
            report.deltas.append(Delta(
                path, base, cand, status,
                note="" if status == OK else "NaN on one side"))
            continue
        rule = _rule_for(path, tolerances)
        allowed = rule.rel_tol * abs(base) + rule.abs_tol
        drift = (cand - base) if rule.one_sided else abs(cand - base)
        if drift <= allowed:
            report.deltas.append(Delta(path, base, cand, OK))
        else:
            report.deltas.append(Delta(
                path, base, cand, rule.severity,
                note=f"drift {drift:.4g} > allowed {allowed:.4g}"))
    return report


# -- regression attribution -------------------------------------------------


@dataclass(frozen=True)
class AttributionShift:
    """How one (node, resource-category) segment's share moved."""

    node: str
    category: str
    baseline_share: float        # fraction of total attributed time
    candidate_share: float
    baseline_s: float
    candidate_s: float

    @property
    def share_delta(self) -> float:
        return self.candidate_share - self.baseline_share

    def describe(self) -> str:
        """One human-readable line naming the moved segment."""
        return (f"{self.share_delta:+.1%} of attributed time moved "
                f"{'into' if self.share_delta >= 0 else 'out of'} "
                f"{self.category} on {self.node} "
                f"({self.baseline_s:.3g}s -> {self.candidate_s:.3g}s)")


def _breakdown(artifact: Dict[str, Any], experiment: str,
               part: str) -> Optional[Dict[str, Dict[str, float]]]:
    entry = artifact.get("experiments", {}).get(experiment)
    if entry is None:
        return None
    payload = entry.get("parts", {}).get(part)
    if payload is None or payload.get("type") != "nested":
        return None
    return payload["rows"]


def attribution_shifts(baseline: Dict[str, Any],
                       candidate: Dict[str, Any],
                       experiment: str = "attr",
                       part: str = "breakdown",
                       ) -> List[AttributionShift]:
    """Per-(node, category) attribution share movement.

    Reads the ``attr`` experiment's per-node resource breakdown from
    both artifacts, normalizes each side to *shares* of its own total
    attributed time (so a uniformly slower run shows no shift), and
    returns every segment sorted by how far its share moved —
    biggest mover first.  Empty when either artifact lacks the
    breakdown.
    """
    base = _breakdown(baseline, experiment, part)
    cand = _breakdown(candidate, experiment, part)
    if base is None or cand is None:
        return []
    base_total = sum(v for row in base.values() for v in row.values())
    cand_total = sum(v for row in cand.values() for v in row.values())
    if base_total <= 0 or cand_total <= 0:
        return []
    shifts = []
    for node in sorted(set(base) | set(cand)):
        categories = (set(base.get(node, {}))
                      | set(cand.get(node, {})))
        for category in sorted(categories):
            base_s = base.get(node, {}).get(category, 0.0)
            cand_s = cand.get(node, {}).get(category, 0.0)
            shifts.append(AttributionShift(
                node, category,
                base_s / base_total, cand_s / cand_total,
                base_s, cand_s))
    shifts.sort(key=lambda s: (-abs(s.share_delta), s.node,
                               s.category))
    return shifts


def render_attribution_shifts(report: ComparisonReport,
                              baseline: Dict[str, Any],
                              candidate: Dict[str, Any],
                              top: int = 3,
                              min_share_delta: float = 0.01,
                              ) -> str:
    """Name the resource segments behind flagged latency/goodput drift.

    When ``--compare`` flags a latency or goodput delta and both
    artifacts carry the ``attr`` breakdown, this turns "p99 regressed
    12%" into "p99 regressed 12%, +9% of it NIC-wire wait on node-2".
    Empty string when there is nothing to attribute.
    """
    flagged = [d for d in report.deltas if d.status != OK
               and any(tag in d.path
                       for tag in ("latency", "goodput"))]
    if not flagged:
        return ""
    movers = [s for s in attribution_shifts(baseline, candidate)
              if abs(s.share_delta) >= min_share_delta][:top]
    if not movers:
        return ""
    lines = ["attribution of the flagged latency/goodput drift:"]
    for delta in flagged[:top]:
        rel = delta.rel_change
        rel_str = "inf" if math.isinf(rel) else f"{rel:+.1%}"
        lines.append(f"  {delta.path}: {rel_str}")
    for shift in movers:
        lines.append(f"  {shift.describe()}")
    return "\n".join(lines)


def render_comparison(report: ComparisonReport,
                      show_ok: bool = False) -> str:
    """The human table ``--compare`` prints."""
    from ..bench.reporting import format_table

    shown = [d for d in report.deltas
             if show_ok or d.status != OK]
    lines = []
    if shown:
        rows = []
        for delta in shown:
            rel = delta.rel_change
            rel_str = "-" if math.isnan(rel) else (
                "inf" if math.isinf(rel) else f"{rel:+.2%}")
            rows.append([
                delta.status,
                delta.path,
                "-" if delta.baseline is None
                else f"{delta.baseline:.6g}",
                "-" if delta.candidate is None
                else f"{delta.candidate:.6g}",
                rel_str,
                delta.note,
            ])
        lines.append(format_table(
            ["status", "metric", "baseline", "candidate", "change",
             "note"], rows))
        lines.append("")
    ok_count = sum(1 for d in report.deltas if d.status == OK)
    lines.append(
        f"{len(report.deltas)} metrics compared: {ok_count} ok, "
        f"{len(report.warnings)} warnings, "
        f"{len(report.regressions)} regressions"
    )
    return "\n".join(lines)
