"""Schema-versioned benchmark run artifacts.

One ``python -m repro.bench --json-out BENCH_<runid>.json`` run
serializes every experiment's structured result — the same
:class:`~repro.bench.harness.Sweep` / dict objects the experiment
functions return — into a single auditable document with provenance
(git sha, python version, per-experiment wall clock, hardware
profiles, workload seed).  The claims registry
(:mod:`repro.obs.claims`) and the regression comparator
(:mod:`repro.obs.regress`) both consume this format, so a committed
baseline artifact gives the reproduction a perf trajectory.

Artifact layout (``SCHEMA_VERSION`` 1)::

    {
      "schema": "repro.bench/artifact",
      "schema_version": 1,
      "provenance": {"git_sha": ..., "python": ..., ...},
      "experiments": {
        "fig1": {
          "title": "Figure 1: ...",
          "wall_clock_s": 1.98,
          "parts": {
            "compression": {"type": "sweep", "x_label": ..., "rows": [...]},
            "real_bytes_checkpoint": {"type": "table", "values": {...}}
          }
        }, ...
      }
    }

Three part types cover every experiment result: ``sweep`` (a
parameter sweep, one series per column), ``table`` (a flat
metric→value mapping), and ``nested`` (config→{metric: value}, the
A1/A2/F6 shape).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from typing import Any, Dict, List, Optional

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "DEFAULT_WORKLOAD_SEED",
    "VOLATILE_EXPERIMENTS",
    "encode_part",
    "decode_part",
    "collect_provenance",
    "make_artifact",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "strip_volatile",
]

SCHEMA_NAME = "repro.bench/artifact"
SCHEMA_VERSION = 1

#: The fixed seed the workload generators use (S9, ablations); recorded
#: in provenance so two artifacts are known to describe the same
#: request streams.
DEFAULT_WORKLOAD_SEED = 13

_PART_TYPES = ("sweep", "table", "nested")

#: Experiments whose metrics are real wall-clock measurements (the
#: kernel microbenchmarks) rather than simulated results: excluded
#: from the sequential-vs-parallel byte-identity check and compared
#: warn-only by the regression comparator.
VOLATILE_EXPERIMENTS = ("perf",)


# -- part encoding ----------------------------------------------------------


def encode_part(result: Any) -> Dict[str, Any]:
    """Encode one experiment part (Sweep or dict) as JSON-safe data."""
    from ..bench.harness import Sweep

    if isinstance(result, Sweep):
        encoded = result.to_dict()
        encoded["type"] = "sweep"
        return encoded
    if isinstance(result, dict):
        if result and all(isinstance(value, dict)
                          for value in result.values()):
            return {"type": "nested",
                    "rows": {name: dict(values)
                             for name, values in result.items()}}
        return {"type": "table", "values": dict(result)}
    raise TypeError(
        f"cannot encode {type(result).__name__} as an artifact part"
    )


def decode_part(part: Dict[str, Any]) -> Any:
    """Rebuild the Sweep / dict an :func:`encode_part` call flattened."""
    from ..bench.harness import Sweep

    kind = part.get("type")
    if kind == "sweep":
        return Sweep.from_dict(part)
    if kind == "table":
        return dict(part["values"])
    if kind == "nested":
        return {name: dict(values)
                for name, values in part["rows"].items()}
    raise ValueError(f"unknown artifact part type {kind!r}")


# -- provenance -------------------------------------------------------------


def _git(*args: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def collect_provenance(argv: Optional[List[str]] = None) -> Dict[str, Any]:
    """Everything needed to interpret (and trust) an artifact later."""
    from ..hardware import DPU_PROFILES

    status = _git("status", "--porcelain")
    profiles = {
        name: {
            "vendor": profile.vendor,
            "arm_cores": profile.arm_cores,
            "arm_frequency_hz": profile.arm_frequency_hz,
            "nic_bandwidth_bps": profile.nic_bandwidth_bps,
            "accelerators": sorted(spec.kind
                                   for spec in profile.accelerators),
        }
        for name, profile in sorted(DPU_PROFILES.items())
    }
    return {
        "git_sha": _git("rev-parse", "HEAD"),
        "git_dirty": bool(status) if status is not None else None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "workload_seed": DEFAULT_WORKLOAD_SEED,
        "hardware_profiles": profiles,
    }


# -- assembly / IO ----------------------------------------------------------


def make_artifact(experiments: Dict[str, Dict[str, Any]],
                  provenance: Optional[Dict[str, Any]] = None,
                  argv: Optional[List[str]] = None,
                  total_wall_clock_s: Optional[float] = None,
                  ) -> Dict[str, Any]:
    """Assemble the artifact document.

    ``experiments`` maps experiment id to
    ``{"title": str, "wall_clock_s": float, "parts": {name: result}}``
    where each result is a Sweep or dict, encoded here.
    ``total_wall_clock_s`` is the whole run's real elapsed time —
    under ``--jobs N`` it is less than the per-experiment sum, which
    is what the perf gate asserts.
    """
    encoded = {}
    for key, entry in experiments.items():
        encoded[key] = {
            "title": entry.get("title", key),
            "wall_clock_s": entry.get("wall_clock_s"),
            "parts": {name: encode_part(result)
                      for name, result in entry["parts"].items()},
        }
        # --profile hotspot rows ride along so nightly retains them;
        # real-time data, so strip_volatile drops it for identity.
        if entry.get("profile") is not None:
            encoded[key]["profile"] = entry["profile"]
    document = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "provenance": (provenance if provenance is not None
                       else collect_provenance(argv)),
        "experiments": encoded,
    }
    if total_wall_clock_s is not None:
        document["total_wall_clock_s"] = total_wall_clock_s
    return document


def strip_volatile(document: Dict[str, Any]) -> Dict[str, Any]:
    """A deep copy of ``document`` with everything run-dependent gone.

    Two runs of the same code on the same tree must agree on the
    result *byte for byte* — regardless of ``--jobs``, load, or
    machine speed.  This canonical form drops exactly the fields
    that legitimately vary: wall clocks (per-experiment and total),
    the recorded command line (``--jobs N``/output paths differ),
    per-experiment ``--profile`` hotspot rows (real time), and the
    :data:`VOLATILE_EXPERIMENTS`, whose metrics *are* wall clocks.  Everything else — every simulated metric, claim input,
    and provenance field — must match.
    """
    import copy

    canonical = copy.deepcopy(document)
    canonical.pop("total_wall_clock_s", None)
    provenance = canonical.get("provenance")
    if isinstance(provenance, dict):
        provenance.pop("argv", None)
    experiments = canonical.get("experiments")
    if isinstance(experiments, dict):
        for key in VOLATILE_EXPERIMENTS:
            experiments.pop(key, None)
        for entry in experiments.values():
            if isinstance(entry, dict):
                entry.pop("wall_clock_s", None)
                entry.pop("profile", None)
    return canonical


def write_artifact(path: str, document: Dict[str, Any]) -> None:
    """Write an artifact as stable, sorted, indented JSON."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and validate an artifact; raise ``ValueError`` if broken."""
    with open(path) as handle:
        document = json.load(handle)
    errors = validate_artifact(document)
    if errors:
        raise ValueError(
            f"{path}: not a valid benchmark artifact: "
            + "; ".join(errors[:5])
        )
    return document


# -- validation -------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_part(where: str, part: Any, errors: List[str]) -> None:
    if not isinstance(part, dict):
        errors.append(f"{where}: part is not an object")
        return
    kind = part.get("type")
    if kind not in _PART_TYPES:
        errors.append(f"{where}: unknown part type {kind!r}")
        return
    if kind == "sweep":
        if not isinstance(part.get("x_label"), str):
            errors.append(f"{where}: sweep missing x_label")
        rows = part.get("rows")
        if not isinstance(rows, list):
            errors.append(f"{where}: sweep rows must be a list")
            return
        for index, row in enumerate(rows):
            if not isinstance(row, dict) or "x" not in row \
                    or not isinstance(row.get("values"), dict):
                errors.append(f"{where}: malformed sweep row {index}")
                return
            if not _is_number(row["x"]):
                errors.append(f"{where}: row {index} x is not numeric")
            for name, value in row["values"].items():
                if not _is_number(value):
                    errors.append(
                        f"{where}: row {index} series {name!r} "
                        "is not numeric"
                    )
    elif kind == "table":
        values = part.get("values")
        if not isinstance(values, dict):
            errors.append(f"{where}: table missing values")
            return
        for name, value in values.items():
            if not _is_number(value):
                errors.append(f"{where}: metric {name!r} is not numeric")
    else:  # nested
        rows = part.get("rows")
        if not isinstance(rows, dict):
            errors.append(f"{where}: nested part missing rows")
            return
        for config, values in rows.items():
            if not isinstance(values, dict):
                errors.append(f"{where}: config {config!r} is not an "
                              "object")
                continue
            for name, value in values.items():
                if not _is_number(value):
                    errors.append(f"{where}: {config}.{name} is not "
                                  "numeric")


def validate_artifact(document: Any) -> List[str]:
    """All schema violations in ``document`` (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["artifact is not a JSON object"]
    if document.get("schema") != SCHEMA_NAME:
        errors.append(f"schema is {document.get('schema')!r}, "
                      f"expected {SCHEMA_NAME!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version is {document.get('schema_version')!r}, "
            f"this reader understands {SCHEMA_VERSION}"
        )
    total = document.get("total_wall_clock_s")
    if total is not None and not _is_number(total):
        errors.append("total_wall_clock_s is not numeric")
    provenance = document.get("provenance")
    if not isinstance(provenance, dict):
        errors.append("missing provenance object")
    else:
        for field in ("python", "platform", "workload_seed"):
            if field not in provenance:
                errors.append(f"provenance missing {field!r}")
    experiments = document.get("experiments")
    if not isinstance(experiments, dict):
        errors.append("missing experiments object")
        return errors
    for key, entry in experiments.items():
        if not isinstance(entry, dict):
            errors.append(f"experiment {key!r} is not an object")
            continue
        wall = entry.get("wall_clock_s")
        if wall is not None and not _is_number(wall):
            errors.append(f"experiment {key!r} wall_clock_s is not "
                          "numeric")
        parts = entry.get("parts")
        if not isinstance(parts, dict):
            errors.append(f"experiment {key!r} missing parts")
            continue
        for name, part in parts.items():
            _validate_part(f"{key}.{name}", part, errors)
    return errors
