"""Observability: sim-time tracing and a unified metrics registry.

``repro.obs`` is the telemetry layer threaded through the DPDPU
runtime.  :class:`Tracer` records nested sim-time spans across the
compute, network, and storage engines and exports Chrome
``trace_event`` JSON (loadable in Perfetto) plus a plain-text flame
summary; :class:`MetricsRegistry` gives every scattered counter and
tally one hierarchical namespace; :class:`Telemetry` bundles both for
injection via ``DpdpuRuntime(..., telemetry=...)``.

Tracing is off by default: disabled call sites hit the shared
:data:`NULL_TRACER` singleton and return :data:`NULL_SPAN`, so
instrumentation has zero overhead and never perturbs results.

The package is also the **benchmark observatory**: :mod:`.artifact`
defines the schema-versioned run artifact ``python -m repro.bench
--json-out`` writes, :mod:`.claims` encodes the paper's quantitative
claims (F1–F3, F6–F8, S9) as data for ``--check``, and
:mod:`.regress` diffs two artifacts metric-by-metric for the
``--compare`` perf-regression gate.
"""

from .metrics import MetricsRegistry
from .telemetry import Telemetry
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    merge_chrome_events,
    write_merged_chrome,
)

# The observatory modules lazily import repro.bench (which imports
# repro.core, which imports this package), so they must come after
# the telemetry names above are bound.  The telemetry plane only
# needs the names above, but keeps the same ordering discipline.
from . import artifact, claims, regress  # noqa: E402
from .attr import (  # noqa: E402
    AttributionCollector,
    AttributionReport,
    OffloadAdvisor,
    RequestAttribution,
    build_report,
)
from .plane import (  # noqa: E402
    ClusterTelemetry,
    FlightRecorder,
    SloMonitor,
    SloSpec,
    SloViolation,
    TelemetrySnapshot,
)

__all__ = [
    "AttributionCollector",
    "AttributionReport",
    "ClusterTelemetry",
    "FlightRecorder",
    "OffloadAdvisor",
    "RequestAttribution",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "SloMonitor",
    "SloSpec",
    "SloViolation",
    "Span",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceContext",
    "Tracer",
    "artifact",
    "build_report",
    "claims",
    "merge_chrome_events",
    "regress",
    "write_merged_chrome",
]
