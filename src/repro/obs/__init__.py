"""Observability: sim-time tracing and a unified metrics registry.

``repro.obs`` is the telemetry layer threaded through the DPDPU
runtime.  :class:`Tracer` records nested sim-time spans across the
compute, network, and storage engines and exports Chrome
``trace_event`` JSON (loadable in Perfetto) plus a plain-text flame
summary; :class:`MetricsRegistry` gives every scattered counter and
tally one hierarchical namespace; :class:`Telemetry` bundles both for
injection via ``DpdpuRuntime(..., telemetry=...)``.

Tracing is off by default: disabled call sites hit the shared
:data:`NULL_TRACER` singleton and return :data:`NULL_SPAN`, so
instrumentation has zero overhead and never perturbs results.
"""

from .metrics import MetricsRegistry
from .telemetry import Telemetry
from .trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Telemetry",
    "Tracer",
]
