"""The telemetry bundle wired through :class:`DpdpuRuntime`.

One :class:`Telemetry` object carries the two observability channels:

* ``tracer`` — a sim-time :class:`~repro.obs.trace.Tracer`, or the
  shared no-op :data:`~repro.obs.trace.NULL_TRACER` when tracing is
  off (the default, so instrumentation costs nothing);
* ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` that
  adopts the counters/tallies/gauges the engines and hardware models
  already maintain, under one hierarchical namespace.

Usage::

    telemetry = Telemetry(tracing=True)
    runtime = DpdpuRuntime(server, telemetry=telemetry)
    ...run the workload...
    telemetry.tracer.write_chrome("trace.json")
    print(telemetry.metrics.render_table(env.now))
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import NULL_TRACER, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Tracer + metrics registry, injected into a runtime.

    ``node`` names the runtime this bundle observes in distributed
    traces (defaults to ``name``); per-node bundles handed out by
    :class:`~repro.obs.plane.ClusterTelemetry` set it to the cluster
    node's name so every span is node-tagged.
    """

    def __init__(self, env=None, tracing: bool = False,
                 name: str = "telemetry", node: str = None):
        self.name = name
        self.node = node if node is not None else name
        self.metrics = MetricsRegistry(name=name)
        self.tracer = Tracer(env, node=self.node) if tracing \
            else NULL_TRACER

    @property
    def tracing_enabled(self) -> bool:
        """True when spans are actually being recorded."""
        return self.tracer.enabled

    def bind(self, env) -> None:
        """Attach the tracer to a simulation environment's clock."""
        self.tracer.bind(env)

    # -- export (the CLI's trace-output protocol) ---------------------------

    def to_chrome_events(self):
        """Chrome trace events for this bundle's tracer."""
        return self.tracer.to_chrome_events()

    def write_chrome(self, path: str) -> int:
        """Write this bundle's trace; returns event count."""
        return self.tracer.write_chrome(path)

    def flame_summary(self, max_rows: int = 60) -> str:
        """Plain-text flame summary of this bundle's tracer."""
        return self.tracer.flame_summary(max_rows=max_rows)

    def register_runtime(self, runtime) -> None:
        """Adopt a :class:`DpdpuRuntime`'s instruments into the registry.

        Gives the scattered per-engine collectors hierarchical names
        (``ce.*`` / ``ne.*`` / ``se.*`` plus ``host.*`` / ``dpu.*`` /
        ``nic.*`` hardware meters) so one ``snapshot()`` covers the
        whole deployment.  Safe to call once per runtime; duplicate
        adoption of the same instruments is a no-op.
        """
        server = runtime.server
        dpu = server.dpu
        metrics = self.metrics
        metrics.register("host.cpu.cycles",
                         server.host_cpu.cycles_charged)
        metrics.register("dpu.cpu.cycles", dpu.cpu.cycles_charged)
        metrics.register("nic.tx_bytes", server.nic.tx_bytes)
        metrics.register("nic.rx_bytes", server.nic.rx_bytes)
        metrics.register("pcie.bytes_moved", dpu.pcie.bytes_moved)
        for kind, accelerator in dpu.accelerators.items():
            metrics.register(f"dpu.asic.{kind}.jobs", accelerator.jobs)

        compute = runtime.compute
        metrics.register("ce.kernel.execs", compute.kernel_executions)
        metrics.register("ce.kernel.latency", compute.kernel_latency)
        metrics.register("ce.kernel.degraded", compute.degraded)
        scheduler = compute.scheduler
        metrics.register("ce.sched.dispatched", scheduler.dispatched)
        metrics.register("ce.sched.spilled", scheduler.spilled)
        metrics.register("ce.sched.wait", scheduler.wait_time)

        network = runtime.network
        traffic = getattr(network, "traffic", None)
        if traffic is not None:
            traffic.tracer = self.tracer
            metrics.register("traffic.failovers", traffic.failovers)
            metrics.register("traffic.failbacks", traffic.failbacks)
        metrics.register("ne.ops_offloaded", network.ops_offloaded)
        metrics.register("ne.sq.occupancy",
                         network.rings.submission.occupancy)
        metrics.register("ne.tcp.segments_rx",
                         network.tcp.segments_rx)
        metrics.register("ne.tcp.segments_tx",
                         network.tcp.segments_tx)

        storage = runtime.storage
        metrics.register("se.host_ops", storage.host_ops)
        metrics.register("se.dpu_ops", storage.dpu_ops)
        metrics.register("se.host_op_latency", storage.host_op_latency)
        metrics.register("se.persist_ack_latency",
                         storage.persist_ack_latency)
        metrics.register("se.sq.occupancy",
                         storage.rings.submission.occupancy)
        metrics.register("se.fs.bytes_read", storage.fs.bytes_read)
        metrics.register("se.fs.bytes_written",
                         storage.fs.bytes_written)
        metrics.register("se.journal.appends", storage.journal.appends)
        metrics.register("se.journal.append_latency",
                         storage.journal.append_latency)
        metrics.register("se.apply_failures", storage.apply_failures)
        for label, cache in (("dpu", storage.dpu_cache),
                             ("host", storage.host_cache)):
            if cache is not None:
                metrics.register(f"se.cache.{label}.hits", cache.hits)
                metrics.register(f"se.cache.{label}.misses",
                                 cache.misses)
                metrics.register(f"se.cache.{label}.evictions",
                                 cache.evictions)

        injector = getattr(runtime, "injector", None)
        if injector is not None:
            self.register_injector(injector)

    def register_injector(self, injector) -> None:
        """Adopt a :class:`~repro.faults.FaultInjector`'s counters.

        Registered under ``faults.*`` so injected errors, delays,
        drops, and down-window hits land in the same snapshot as the
        engine metrics they perturb.
        """
        metrics = self.metrics
        metrics.register("faults.injected", injector.injected)
        metrics.register("faults.errors", injector.errors)
        metrics.register("faults.delays", injector.delays)
        metrics.register("faults.drops", injector.drops)
        metrics.register("faults.down_hits", injector.downs)

    def register_breaker(self, breaker) -> None:
        """Adopt a :class:`~repro.faults.CircuitBreaker`'s counters.

        Registered under ``<breaker name>.*`` (trips, rejections,
        probes) — the failover audit trail.
        """
        metrics = self.metrics
        metrics.register(f"{breaker.name}.trips", breaker.trips)
        metrics.register(f"{breaker.name}.rejections",
                         breaker.rejections)
        metrics.register(f"{breaker.name}.probes", breaker.probes)

    def __repr__(self) -> str:
        mode = "tracing" if self.tracing_enabled else "metrics-only"
        return f"Telemetry({self.name}, {mode}, {len(self.metrics)} metrics)"
