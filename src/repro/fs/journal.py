"""A write-ahead journal for the fast-persistence path.

Section 9 ("Faster persistence") proposes persisting writes on the DPU
— to its directly-attached SSD or onboard persistent memory — and
acknowledging immediately, before the host ever sees the operation.
This journal is that durability point: sequential appends with
monotonically increasing LSNs, a truncation watermark, and recovery by
replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..errors import FaultInjectedError, StorageError
from ..hardware.ssd import Ssd
from ..obs.trace import NULL_TRACER
from ..sim.stats import Counter, Tally

__all__ = ["Journal", "JournalRecord"]


@dataclass(frozen=True)
class JournalRecord:
    """One durable journal entry."""

    lsn: int
    kind: str
    payload: Any
    size: int


class Journal:
    """An append-only, device-backed log."""

    def __init__(self, ssd: Ssd, capacity_bytes: int,
                 name: str = "journal", tracer=None, injector=None):
        if capacity_bytes <= 0:
            raise ValueError("journal capacity must be positive")
        self.ssd = ssd
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional FaultInjector; site journal.<name> plus the
        #: backing device's own ssd.<name>.write site
        self.injector = injector
        if injector is not None and ssd.injector is None:
            ssd.injector = injector
        self.faults = Counter(f"{name}.faults")
        self._records: List[JournalRecord] = []
        self._next_lsn = 1
        self._used = 0
        self._truncated_through = 0
        self.appends = Counter(f"{name}.appends")
        self.append_latency = Tally(f"{name}.append_latency")

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def truncated_through(self) -> int:
        return self._truncated_through

    def append(self, kind: str, payload: Any, size: int):
        """Durably append a record (generator -> JournalRecord).

        Completes only after the device write has persisted — this is
        the DPU-side acknowledgement point for fast persistence.
        """
        if size <= 0:
            raise ValueError(f"record size must be positive, got {size}")
        if self._used + size > self.capacity_bytes:
            raise StorageError(
                f"{self.name}: journal full "
                f"({self._used}+{size} > {self.capacity_bytes}); truncate"
            )
        if self.injector is not None:
            try:
                yield from self.injector.perturb(f"journal.{self.name}")
            except FaultInjectedError:
                self.faults.add(1)
                raise
        start = self.ssd.env.now
        with self.tracer.span("journal.append", category="storage",
                              kind=kind, bytes=size):
            yield from self.ssd.write(size)
            record = JournalRecord(self._next_lsn, kind, payload, size)
            self._next_lsn += 1
            self._records.append(record)
            self._used += size
            self.appends.add(1)
            self.append_latency.observe(self.ssd.env.now - start)
            return record

    def truncate_through(self, lsn: int) -> int:
        """Discard records with LSN <= ``lsn``; returns bytes freed."""
        freed = 0
        keep: List[JournalRecord] = []
        for record in self._records:
            if record.lsn <= lsn:
                freed += record.size
            else:
                keep.append(record)
        self._records = keep
        self._used -= freed
        self._truncated_through = max(self._truncated_through, lsn)
        return freed

    def replay(self, apply: Optional[Callable[[JournalRecord], None]]
               = None) -> List[JournalRecord]:
        """Recovery: iterate surviving records in LSN order."""
        records = sorted(self._records, key=lambda r: r.lsn)
        if apply is not None:
            for record in records:
                apply(record)
        return records
