"""Extent-based block allocation.

First-fit over a sorted free list with coalescing on free — the same
scheme simple production filesystems use, and enough structure for the
DPU file service's *file mapping* (file -> physical blocks) to be a
real translation rather than a stub.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import StorageError

__all__ = ["Extent", "ExtentAllocator"]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks: [start, start + length)."""

    start: int
    length: int

    def __post_init__(self):
        if self.start < 0 or self.length <= 0:
            raise ValueError(f"invalid extent ({self.start}, {self.length})")

    @property
    def end(self) -> int:
        return self.start + self.length


class ExtentAllocator:
    """First-fit extent allocator over ``total_blocks`` blocks."""

    def __init__(self, total_blocks: int):
        if total_blocks <= 0:
            raise ValueError("need at least one block")
        self.total_blocks = total_blocks
        self._free: List[Extent] = [Extent(0, total_blocks)]

    @property
    def free_blocks(self) -> int:
        return sum(extent.length for extent in self._free)

    @property
    def fragments(self) -> int:
        """Number of free extents (fragmentation indicator)."""
        return len(self._free)

    def allocate(self, blocks: int) -> List[Extent]:
        """Allocate ``blocks`` blocks as one or more extents.

        Prefers a single extent; falls back to stitching fragments.
        Raises :class:`StorageError` when space is insufficient.
        """
        if blocks <= 0:
            raise ValueError(f"non-positive allocation {blocks}")
        if blocks > self.free_blocks:
            raise StorageError(
                f"allocation of {blocks} blocks exceeds {self.free_blocks} "
                "free"
            )
        # First fit: a single free extent that covers the request.
        for index, extent in enumerate(self._free):
            if extent.length >= blocks:
                allocated = Extent(extent.start, blocks)
                if extent.length == blocks:
                    self._free.pop(index)
                else:
                    self._free[index] = Extent(
                        extent.start + blocks, extent.length - blocks
                    )
                return [allocated]
        # Fragmented path: consume fragments front to back.
        out: List[Extent] = []
        remaining = blocks
        while remaining > 0:
            extent = self._free[0]
            take = min(extent.length, remaining)
            out.append(Extent(extent.start, take))
            if take == extent.length:
                self._free.pop(0)
            else:
                self._free[0] = Extent(
                    extent.start + take, extent.length - take
                )
            remaining -= take
        return out

    def free(self, extents: List[Extent]) -> None:
        """Return extents to the free list, coalescing neighbours."""
        for extent in extents:
            self._insert(extent)

    def _insert(self, extent: Extent) -> None:
        # Maintain the free list sorted by start; merge adjacents.
        position = 0
        while (position < len(self._free)
               and self._free[position].start < extent.start):
            position += 1
        if position < len(self._free):
            overlap_next = extent.end > self._free[position].start
        else:
            overlap_next = False
        overlap_prev = (
            position > 0 and self._free[position - 1].end > extent.start
        )
        if overlap_next or overlap_prev:
            raise StorageError(
                f"double free of blocks [{extent.start}, {extent.end})"
            )
        self._free.insert(position, extent)
        # Coalesce with the next extent.
        if (position + 1 < len(self._free)
                and self._free[position].end
                == self._free[position + 1].start):
            merged = Extent(
                self._free[position].start,
                self._free[position].length
                + self._free[position + 1].length,
            )
            self._free[position:position + 2] = [merged]
        # Coalesce with the previous extent.
        if (position > 0
                and self._free[position - 1].end
                == self._free[position].start):
            merged = Extent(
                self._free[position - 1].start,
                self._free[position - 1].length
                + self._free[position].length,
            )
            self._free[position - 1:position + 1] = [merged]
