"""Block device layer on top of the SSD model.

Translates block-addressed I/O (LBA + count) into SSD operations and
keeps per-device accounting.  Content is tracked at the filesystem
layer; this layer owns geometry and timing.
"""

from __future__ import annotations

from ..errors import StorageError
from ..hardware.ssd import Ssd
from ..obs.trace import NULL_TRACER
from ..sim.stats import Counter
from ..units import GiB

__all__ = ["BlockDevice"]


class BlockDevice:
    """A fixed-geometry block device backed by an :class:`Ssd`."""

    def __init__(self, ssd: Ssd, capacity_bytes: int = 256 * GiB,
                 block_size: int = 4096, tracer=None, injector=None):
        if block_size <= 0 or capacity_bytes < block_size:
            raise ValueError("invalid block device geometry")
        self.ssd = ssd
        # Block I/O faults surface through the backing device's
        # ssd.<name>.read / .write sites.
        if injector is not None and ssd.injector is None:
            ssd.injector = injector
        self.block_size = block_size
        self.num_blocks = capacity_bytes // block_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.reads = Counter("blockdev.reads")
        self.writes = Counter("blockdev.writes")

    def _check(self, lba: int, count: int) -> None:
        if count <= 0:
            raise StorageError(f"non-positive block count {count}")
        if lba < 0 or lba + count > self.num_blocks:
            raise StorageError(
                f"blocks [{lba}, {lba + count}) outside device of "
                f"{self.num_blocks} blocks"
            )

    def read_blocks(self, lba: int, count: int):
        """Read ``count`` blocks starting at ``lba`` (generator)."""
        self._check(lba, count)
        self.reads.add(1)
        with self.tracer.span("ssd.read", category="storage",
                              lba=lba, blocks=count):
            yield from self.ssd.read(count * self.block_size)

    def write_blocks(self, lba: int, count: int):
        """Write ``count`` blocks starting at ``lba`` (generator)."""
        self._check(lba, count)
        self.writes.add(1)
        with self.tracer.span("ssd.write", category="storage",
                              lba=lba, blocks=count):
            yield from self.ssd.write(count * self.block_size)
