"""Storage substrate: block device, extents, filesystem, cache, journal."""

from .blockdev import BlockDevice
from .extents import Extent, ExtentAllocator
from .filesystem import FileMapping, FileSystem, Inode
from .journal import Journal, JournalRecord
from .pagecache import PageCache

__all__ = [
    "BlockDevice",
    "Extent",
    "ExtentAllocator",
    "FileMapping",
    "FileSystem",
    "Inode",
    "Journal",
    "JournalRecord",
    "PageCache",
]
