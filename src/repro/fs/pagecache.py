"""An LRU page cache backed by a :class:`MemoryRegion`.

Used in two places, per the paper's Section 9 "Caching in DPU-backed
file system" discussion: a cache in *host* memory (cheap for host
applications) and a cache in *DPU* memory (cheap for offloaded remote
requests).  Sizing the two against each other is ablation A3.

The cache stores :class:`~repro.buffers.Buffer` handles keyed by
``(file_id, page_index)`` and charges its capacity against the owning
memory region, so cache growth genuinely competes with other memory
users (e.g. the offload engine's log-replay working set).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from ..buffers import Buffer
from ..hardware.memory import MemoryRegion
from ..sim.stats import Counter

__all__ = ["PageCache"]


class PageCache:
    """A fixed-budget LRU cache of pages."""

    def __init__(self, memory: MemoryRegion, capacity_bytes: int,
                 name: str = "pagecache"):
        if capacity_bytes < 0:
            raise ValueError("capacity cannot be negative")
        self.memory = memory
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._entries: "OrderedDict[Hashable, Tuple[Buffer, object]]" = (
            OrderedDict()
        )
        self._used = 0
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.evictions = Counter(f"{name}.evictions")

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Buffer]:
        """Look up a page; promotes on hit, returns None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses.add(1)
            return None
        self._entries.move_to_end(key)
        self.hits.add(1)
        return entry[0]

    def put(self, key: Hashable, page: Buffer) -> None:
        """Insert (or refresh) a page, evicting LRU entries as needed.

        Pages larger than the whole cache are not cached at all.
        """
        size = max(page.size, 1)
        if size > self.capacity_bytes:
            return
        if key in self._entries:
            self._remove(key)
        while self._used + size > self.capacity_bytes and self._entries:
            oldest_key = next(iter(self._entries))
            self._remove(oldest_key)
            self.evictions.add(1)
        allocation = self.memory.try_allocate(size, tag=f"{self.name}:page")
        if allocation is None:
            # The region is under pressure from other users; skip caching.
            return
        self._entries[key] = (page, allocation)
        self._used += size

    def invalidate(self, key: Hashable) -> bool:
        """Drop a page (e.g. after an overwrite). True if present."""
        if key in self._entries:
            self._remove(key)
            return True
        return False

    def clear(self) -> None:
        """Drop every cached page, releasing memory."""
        for key in list(self._entries):
            self._remove(key)

    def _remove(self, key: Hashable) -> None:
        page, allocation = self._entries.pop(key)
        allocation.free()
        self._used -= max(page.size, 1)

    def hit_rate(self) -> float:
        """Hits / lookups so far (0.0 before any lookup)."""
        total = self.hits.value + self.misses.value
        return self.hits.value / total if total else 0.0
