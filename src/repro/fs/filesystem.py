"""An extent-based filesystem with an explicit file mapping.

This is the substrate under both storage paths in the paper:

* the *host* path (baseline): the OS filesystem, reached through the
  kernel block stack;
* the *DPU file service* (Section 7): the same structure, but owned by
  the DPU — "the DPU already maintains the mapping between user files
  and physical blocks on the SSDs (i.e., the file mapping)".

The :class:`FileMapping` is deliberately a first-class object so DDS
can hand it to the DPU: given ``(file_id, offset, size)`` it yields
physical block runs without any host involvement.

Timing comes from the block device; CPU cycles are charged by the
caller (kernel path vs SPDK path cost profiles), keeping one
filesystem implementation for all experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..buffers import Buffer, SynthBuffer, as_buffer
from ..errors import FileNotFoundOnDpuError, FileSystemError
from ..obs.trace import NULL_TRACER
from ..sim.stats import Counter
from .blockdev import BlockDevice
from .extents import Extent, ExtentAllocator

__all__ = ["FileSystem", "FileMapping", "Inode"]


@dataclass
class Inode:
    """Metadata for one file."""

    file_id: int
    name: str
    size: int = 0
    extents: List[Extent] = field(default_factory=list)

    @property
    def allocated_blocks(self) -> int:
        return sum(extent.length for extent in self.extents)


class FileMapping:
    """The file -> physical blocks translation table.

    Exactly the state DDS delegates to the DPU: enough to turn a remote
    ``(file_id, offset, size)`` request into device I/O with no host
    round trip.
    """

    def __init__(self, block_size: int):
        self.block_size = block_size
        self._inodes: Dict[int, Inode] = {}
        self._by_name: Dict[str, int] = {}

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._inodes

    def inode(self, file_id: int) -> Inode:
        """The inode for ``file_id``; raises if unknown."""
        inode = self._inodes.get(file_id)
        if inode is None:
            raise FileNotFoundOnDpuError(f"no file with id {file_id}")
        return inode

    def lookup(self, name: str) -> Optional[int]:
        """File id for ``name``, or None."""
        return self._by_name.get(name)

    def add(self, inode: Inode) -> None:
        """Register a new inode in the mapping."""
        if inode.name in self._by_name:
            raise FileSystemError(f"file {inode.name!r} already exists")
        self._inodes[inode.file_id] = inode
        self._by_name[inode.name] = inode.file_id

    def remove(self, file_id: int) -> Inode:
        """Unregister and return the inode for ``file_id``."""
        inode = self.inode(file_id)
        del self._inodes[file_id]
        del self._by_name[inode.name]
        return inode

    def translate(self, file_id: int, offset: int,
                  size: int) -> List[Tuple[int, int]]:
        """Map a byte range to physical ``(lba, block_count)`` runs."""
        inode = self.inode(file_id)
        if offset < 0 or size <= 0:
            raise FileSystemError(
                f"invalid range offset={offset} size={size}"
            )
        if offset + size > inode.size:
            raise FileSystemError(
                f"range [{offset}, {offset + size}) beyond file size "
                f"{inode.size}"
            )
        first_block = offset // self.block_size
        last_block = (offset + size - 1) // self.block_size
        runs: List[Tuple[int, int]] = []
        logical = 0
        for extent in inode.extents:
            extent_first = logical
            extent_last = logical + extent.length - 1
            lo = max(first_block, extent_first)
            hi = min(last_block, extent_last)
            if lo <= hi:
                runs.append(
                    (extent.start + (lo - extent_first), hi - lo + 1)
                )
            logical += extent.length
        return runs

    @property
    def file_count(self) -> int:
        return len(self._inodes)

    def names(self):
        """All file names in the namespace, sorted."""
        return sorted(self._by_name)


class FileSystem:
    """Extent filesystem over one block device."""

    def __init__(self, device: BlockDevice, name: str = "fs",
                 tracer=None):
        self.device = device
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.block_size = device.block_size
        self.mapping = FileMapping(device.block_size)
        self._allocator = ExtentAllocator(device.num_blocks)
        self._file_ids = itertools.count(1)
        #: real page contents, for RealBuffer data paths
        self._contents: Dict[Tuple[int, int], Buffer] = {}
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.bytes_written = Counter(f"{name}.bytes_written")

    # -- namespace ---------------------------------------------------------

    def create(self, name: str, size: int = 0) -> int:
        """Create a file, optionally preallocated to ``size`` bytes."""
        if size < 0:
            raise FileSystemError(f"negative size {size}")
        file_id = next(self._file_ids)
        inode = Inode(file_id, name)
        self.mapping.add(inode)
        if size:
            self._grow(inode, size)
        return file_id

    def delete(self, file_id: int) -> None:
        """Delete a file, freeing its extents and cached contents."""
        inode = self.mapping.remove(file_id)
        self._allocator.free(inode.extents)
        stale = [key for key in self._contents if key[0] == file_id]
        for key in stale:
            del self._contents[key]

    def lookup(self, name: str) -> Optional[int]:
        """File id for ``name``, or None."""
        return self.mapping.lookup(name)

    def stat(self, file_id: int) -> Inode:
        """The file's inode (size, extents)."""
        return self.mapping.inode(file_id)

    def truncate(self, file_id: int, size: int) -> None:
        """Grow a file to ``size`` bytes (shrinking unsupported)."""
        inode = self.mapping.inode(file_id)
        if size < inode.size:
            raise FileSystemError("shrinking not supported")
        self._grow(inode, size)

    def _grow(self, inode: Inode, new_size: int) -> None:
        needed_blocks = (
            (new_size + self.block_size - 1) // self.block_size
            - inode.allocated_blocks
        )
        if needed_blocks > 0:
            inode.extents.extend(self._allocator.allocate(needed_blocks))
        inode.size = max(inode.size, new_size)

    # -- data path -----------------------------------------------------------

    def write(self, file_id: int, offset: int, payload):
        """Write ``payload`` at ``offset`` (generator; device-timed)."""
        buffer = as_buffer(payload)
        if buffer.size == 0:
            return 0
        inode = self.mapping.inode(file_id)
        if offset < 0:
            raise FileSystemError(f"negative offset {offset}")
        with self.tracer.span("fs.write", category="storage",
                              file_id=file_id, bytes=buffer.size):
            end = offset + buffer.size
            if end > inode.size:
                self._grow(inode, end)
            for lba, count in self.mapping.translate(file_id, offset,
                                                     buffer.size):
                yield from self.device.write_blocks(lba, count)
            self._store_content(file_id, offset, buffer)
            self.bytes_written.add(buffer.size)
            return buffer.size

    def read(self, file_id: int, offset: int, size: int):
        """Read ``size`` bytes at ``offset`` (generator -> Buffer)."""
        with self.tracer.span("fs.read", category="storage",
                              file_id=file_id, bytes=size):
            for lba, count in self.mapping.translate(file_id, offset,
                                                     size):
                yield from self.device.read_blocks(lba, count)
            self.bytes_read.add(size)
            return self.peek(file_id, offset, size)

    # -- content bookkeeping (no timing) ----------------------------------------

    def peek(self, file_id: int, offset: int, size: int) -> Buffer:
        """The buffer a read of this range returns (no device time)."""
        if offset % self.block_size == 0:
            stored = self._contents.get((file_id, offset))
            if stored is not None and stored.size == size:
                return stored
        return SynthBuffer(size, label=f"file{file_id}@{offset}")

    def _store_content(self, file_id: int, offset: int,
                       buffer: Buffer) -> None:
        # Track contents at write granularity, keyed by offset: exact
        # re-reads get the real bytes back, which is what the
        # page-oriented workloads in this repo do.
        self._contents[(file_id, offset)] = buffer

    @property
    def free_bytes(self) -> int:
        return self._allocator.free_blocks * self.block_size
