"""Workload generators: text corpus, KV (FASTER-like), page server."""

from .arrivals import open_loop, poisson_arrivals
from .corpus import TextCorpus, make_text
from .kv import KvOp, KvStoreIndex, YcsbWorkload
from .pageserver import PageRequest, PageServerWorkload
from .tables import Column, LINEITEM_ISH, TableGenerator, TableSchema

__all__ = [
    "open_loop",
    "poisson_arrivals",
    "TextCorpus",
    "make_text",
    "KvOp",
    "KvStoreIndex",
    "YcsbWorkload",
    "PageRequest",
    "PageServerWorkload",
    "Column",
    "LINEITEM_ISH",
    "TableGenerator",
    "TableSchema",
]
