"""Workload generators: text corpus, KV (FASTER-like), page server."""

from .arrivals import (
    ParetoSizes,
    TenantMix,
    arrival_count,
    diurnal_arrivals,
    flash_crowd,
    mmpp_arrivals,
    open_loop,
    poisson_arrivals,
)
from .corpus import TextCorpus, make_text
from .kv import KvOp, KvStoreIndex, YcsbWorkload
from .pageserver import PageRequest, PageServerWorkload
from .tables import Column, LINEITEM_ISH, TableGenerator, TableSchema

__all__ = [
    "arrival_count",
    "open_loop",
    "poisson_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "flash_crowd",
    "ParetoSizes",
    "TenantMix",
    "TextCorpus",
    "make_text",
    "KvOp",
    "KvStoreIndex",
    "YcsbWorkload",
    "PageRequest",
    "PageServerWorkload",
    "Column",
    "LINEITEM_ISH",
    "TableGenerator",
    "TableSchema",
]
