"""Synthetic natural-language corpus generation (for Figure 1).

The paper compresses "natural language datasets of various sizes".
This generator produces deterministic pseudo-English: a Zipf-
distributed vocabulary of word shapes with punctuation and sentence
structure, which DEFLATE compresses at roughly the 2.5–3.5x ratios
typical of real text — so the real-bytes compression path behaves
realistically without shipping a dataset.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["TextCorpus", "make_text"]

_SYLLABLES = (
    "ta re mi no ka so da li ver en tion al ing er st on an th "
    "data base sys tem query page disk net work cloud proc"
).split()


class TextCorpus:
    """A deterministic pseudo-natural-language generator."""

    def __init__(self, seed: int = 1234, vocabulary_size: int = 4096,
                 zipf_s: float = 1.2):
        if vocabulary_size < 10:
            raise ValueError("vocabulary too small")
        rng = random.Random(seed)
        self._words = self._build_vocabulary(rng, vocabulary_size)
        # Zipf weights: rank^-s.
        weights = [1.0 / ((rank + 1) ** zipf_s)
                   for rank in range(vocabulary_size)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._seed = seed

    @staticmethod
    def _build_vocabulary(rng: random.Random, size: int) -> List[str]:
        words = set()
        while len(words) < size:
            n_syllables = rng.randint(1, 4)
            words.add("".join(rng.choice(_SYLLABLES)
                              for _ in range(n_syllables)))
        return sorted(words)

    def _pick_word(self, rng: random.Random) -> str:
        target = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return self._words[lo]

    def generate(self, nbytes: int, stream_seed: int = 0) -> bytes:
        """Generate approximately ``nbytes`` of text (>= nbytes)."""
        if nbytes < 0:
            raise ValueError("negative size")
        rng = random.Random(self._seed * 1_000_003 + stream_seed)
        out: List[str] = []
        produced = 0
        sentence_len = 0
        while produced < nbytes:
            word = self._pick_word(rng)
            sentence_len += 1
            if sentence_len == 1:
                word = word.capitalize()
            if sentence_len >= rng.randint(6, 14):
                word += "."
                sentence_len = 0
            out.append(word)
            produced += len(word) + 1
        return " ".join(out).encode()[:nbytes] if nbytes else b""


def make_text(nbytes: int, seed: int = 1234) -> bytes:
    """One-shot corpus generation."""
    return TextCorpus(seed=seed).generate(nbytes)
