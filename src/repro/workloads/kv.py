"""A FASTER-style key-value store and YCSB-style workload generator.

Section 9 reports integrating DDS with FASTER (a KV store at
Microsoft).  This module provides the equivalent driver: a KV store
whose records live in a hybrid log file on the storage server, so KV
gets/puts become exactly the remote page reads/writes DDS offloads,
plus a YCSB-style request mix generator (zipfian keys, configurable
read fraction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..units import PAGE_SIZE

__all__ = ["KvStoreIndex", "YcsbWorkload", "KvOp"]


@dataclass(frozen=True)
class KvOp:
    """One KV operation, resolved to its page-level storage access."""

    kind: str          # "get" or "put"
    key: int
    offset: int        # byte offset of the record's page in the log
    size: int


class KvStoreIndex:
    """The in-memory index of a FASTER-like hybrid-log KV store.

    Maps keys to log offsets.  Records are page-resident; a ``get``
    needs one page read at the record's offset, a ``put`` appends to
    the log tail (one page write) and updates the index — exactly the
    access pattern the DDS/FASTER integration offloads.
    """

    def __init__(self, n_keys: int, record_size: int = 256):
        if n_keys < 1:
            raise ValueError("need at least one key")
        if not 0 < record_size <= PAGE_SIZE:
            raise ValueError("record size must fit a page")
        self.n_keys = n_keys
        self.record_size = record_size
        self.records_per_page = PAGE_SIZE // record_size
        # Initially keys live densely in key order.
        self._offsets = {
            key: (key // self.records_per_page) * PAGE_SIZE
            for key in range(n_keys)
        }
        self._tail = self.log_size_bytes()

    def log_size_bytes(self) -> int:
        """Bytes of hybrid log holding the initial key population."""
        pages = (self.n_keys + self.records_per_page - 1) \
            // self.records_per_page
        return pages * PAGE_SIZE

    def get(self, key: int) -> KvOp:
        """Resolve a read to its page access."""
        return KvOp("get", key, self._offsets[key], PAGE_SIZE)

    def put(self, key: int) -> KvOp:
        """Resolve an upsert: append at tail, move the key's offset."""
        offset = self._tail
        self._tail += PAGE_SIZE
        self._offsets[key] = offset
        return KvOp("put", key, offset, PAGE_SIZE)

    @property
    def tail_offset(self) -> int:
        return self._tail


class YcsbWorkload:
    """A YCSB-style operation stream over a :class:`KvStoreIndex`.

    ``read_fraction=0.95`` is YCSB-B, ``0.5`` is YCSB-A; keys are
    drawn zipfian (approximated by the classic rejection-free inverse
    method) for realistic skew.
    """

    def __init__(self, index: KvStoreIndex, read_fraction: float = 0.95,
                 zipf_theta: float = 0.99, seed: int = 42):
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= zipf_theta < 1.0:
            raise ValueError("zipf theta must be in [0, 1)")
        self.index = index
        self.read_fraction = read_fraction
        self.theta = zipf_theta
        self._rng = random.Random(seed)
        n = index.n_keys
        # Standard YCSB zipfian constants.
        self._zetan = sum(1.0 / (i ** zipf_theta)
                          for i in range(1, n + 1))
        self._alpha = 1.0 / (1.0 - zipf_theta) if zipf_theta else 1.0
        self._zeta2 = sum(1.0 / (i ** zipf_theta) for i in (1, 2))
        self._eta = ((1 - (2.0 / n) ** (1 - zipf_theta))
                     / (1 - self._zeta2 / self._zetan)) if n > 1 else 0.0

    def _zipf_key(self) -> int:
        n = self.index.n_keys
        if n == 1:
            return 0
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(n * ((self._eta * u - self._eta + 1) ** self._alpha)) \
            % n

    def next_op(self) -> KvOp:
        """Draw the next operation."""
        key = self._zipf_key()
        if self._rng.random() < self.read_fraction:
            return self.index.get(key)
        return self.index.put(key)

    def ops(self, count: int) -> Iterator[KvOp]:
        """A finite stream of operations."""
        if count < 0:
            raise ValueError("negative op count")
        for _ in range(count):
            yield self.next_op()

    def hot_key_fraction(self, sample: int = 10_000,
                         top_keys: int = 100) -> float:
        """Fraction of sampled accesses landing on the hottest keys."""
        rng_state = self._rng.getstate()
        hits = sum(1 for _ in range(sample)
                   if self._zipf_key() < top_keys)
        self._rng.setstate(rng_state)
        return hits / sample
