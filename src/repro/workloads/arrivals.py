"""Request arrival processes: open-loop drivers and traffic shapes.

The paper's Figures 2 and 3 sweep *offered load* (pages/second,
bandwidth) and measure CPU consumption — an open-loop setup.  The
basic helpers (:func:`open_loop`, :func:`poisson_arrivals`) drive a
per-request handler at a target rate inside the simulation.

The chaos-scenario matrix (ROADMAP item 5) needs traffic that looks
like real users rather than a constant drip, so this module also
carries a family of *shaped* generators:

* :func:`mmpp_arrivals` — a Markov-modulated Poisson process: the
  rate jumps between states (calm / burst) with exponential dwell
  times, the standard bursty-traffic model;
* :func:`diurnal_arrivals` — a sinusoidal day/night rate profile,
  realized as a nonhomogeneous Poisson process by thinning;
* :func:`flash_crowd` — a piecewise surge profile (steady → ramp →
  peak → ramp down), the flash-crowd chaos scenario's driver;
* :class:`ParetoSizes` — bounded heavy-tailed request sizes;
* :class:`TenantMix` — a weighted tenant population, so a request
  stream can be attributed to tenants deterministically.

**Determinism contract.**  Every generator is a pure function of its
seed: rate-state transitions and thinning draws come from one
``random.Random(seed)`` consumed in a fixed order, and the per-index
samplers (:meth:`ParetoSizes.size`, :meth:`TenantMix.tenant`) hash
``(seed, index)`` with crc32 so the value for request *i* does not
depend on how many other requests were sampled first.  Replaying a
scenario with the same seeds is byte-identical.

**Counting contract.**  ``open_loop`` with rate ``r`` and duration
``d`` fires exactly ``floor(r * d)`` requests at ``t = i / r`` — the
number of full inter-arrival intervals that fit in the duration —
computed with a relative epsilon so floating-point dust cannot drop
the final arrival (``r=100, d=0.29`` fires 29 requests even though
``100 * 0.29 == 28.999...996`` in binary).  The stochastic drivers
fire every sampled arrival strictly before ``d``.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Callable, Dict, Optional, Sequence

from ..sim import Environment, EventPopulation

__all__ = [
    "arrival_count",
    "open_loop",
    "poisson_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "flash_crowd",
    "ParetoSizes",
    "TenantMix",
]


def arrival_count(rate_per_s: float, duration_s: float) -> int:
    """``floor(rate * duration)``, robust to floating-point dust.

    The mathematically exact product is often not representable
    (``100 * 0.29`` evaluates to ``28.999999999999996``), and a bare
    ``int()`` then silently drops the final arrival.  A half-ulp-ish
    relative epsilon restores the intended floor without ever
    *adding* an arrival the exact product would not include.
    """
    product = rate_per_s * duration_s
    return int(math.floor(product * (1.0 + 1e-12) + 1e-9))


def open_loop(env: Environment, rate_per_s: float,
              handler: Callable[[int], object],
              duration_s: float,
              name: str = "open-loop") -> EventPopulation:
    """Fire ``handler(i)`` every ``1/rate`` seconds for ``duration``.

    ``handler`` returns a generator which is spawned as its own
    process (the arrival loop never blocks on request completion —
    that is what makes it open-loop).  A handler that fires work
    asynchronously and returns ``None`` is simply called — no process
    is spawned for it.  Returns the arrival
    :class:`~repro.sim.EventPopulation` — an event that fires once
    the stream is exhausted (joinable like the old driver process).

    Exactly :func:`arrival_count` requests fire, at ``t = i / rate``
    for ``i in [0, floor(rate * duration))`` — one per full
    inter-arrival interval that fits in the duration.  The whole
    schedule is precomputed into one population: no driver process
    and no per-arrival timeout exist at runtime.
    """
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    interval = 1.0 / rate_per_s
    count = arrival_count(rate_per_s, duration_s)
    start = env.now
    times = [start + i * interval for i in range(count)]
    return EventPopulation(env, times, handler, name=name)


def poisson_arrivals(env: Environment, rate_per_s: float,
                     handler: Callable[[int], object],
                     duration_s: float, seed: int = 0,
                     name: str = "poisson") -> EventPopulation:
    """Like :func:`open_loop` with exponential inter-arrival gaps.

    Every sampled arrival strictly inside ``[0, duration)`` fires;
    the first gap is sampled too, so the expected count is
    ``rate * duration`` (the realized count is seed-dependent).
    """
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = random.Random(seed)
    start = env.now
    times = []
    elapsed = 0.0
    log = math.log
    rnd = rng.random
    while True:
        elapsed += -log(1.0 - rnd()) / rate_per_s
        if elapsed >= duration_s:
            break
        times.append(start + elapsed)
    return EventPopulation(env, times, handler, name=name)


# -- shaped arrival processes ------------------------------------------------------


def _thinned_driver(env: Environment, handler, duration_s: float,
                    peak_rate: float, rate_at: Callable[[float], float],
                    rng: random.Random, name: str) -> EventPopulation:
    """A nonhomogeneous Poisson process by thinning against the peak.

    Candidate arrivals are sampled at the constant ``peak_rate``;
    each is accepted with probability ``rate_at(t) / peak_rate`` —
    the textbook construction, exact for any bounded rate function
    and deterministic given the shared ``rng``.

    The rejection sampling happens entirely at precompute time: the
    draws (one gap, one acceptance per candidate) are consumed in the
    same fixed order as the historical per-event driver, but rejected
    candidates now cost zero simulated events — only accepted
    arrivals enter the population.
    """
    start = env.now
    times = []
    elapsed = 0.0
    log = math.log
    rnd = rng.random
    while True:
        elapsed += -log(1.0 - rnd()) / peak_rate
        if elapsed >= duration_s:
            break
        if rnd() * peak_rate < rate_at(elapsed):
            times.append(start + elapsed)
    return EventPopulation(env, times, handler, name=name)


def mmpp_arrivals(env: Environment, handler: Callable[[int], object],
                  duration_s: float,
                  rates: Sequence[float] = (40_000.0, 240_000.0),
                  dwell_s: Sequence[float] = (2e-3, 5e-4),
                  seed: int = 0, name: str = "mmpp"):
    """A Markov-modulated Poisson process: bursty request traffic.

    The modulating chain cycles through ``rates`` states (state ``k``
    offers Poisson arrivals at ``rates[k]``), staying in each for an
    exponential dwell with mean ``dwell_s[k]``.  Two states give the
    classic calm/burst interrupted-Poisson model; more states give
    multi-level bursts.  Deterministic for a fixed ``seed``.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if len(rates) != len(dwell_s) or not rates:
        raise ValueError("rates and dwell_s must be equal, non-empty")
    if any(rate < 0 for rate in rates) or any(d <= 0 for d in dwell_s):
        raise ValueError("rates must be >= 0 and dwells > 0")
    rng = random.Random(seed)
    state = {"k": 0, "until": 0.0}

    def rate_at(t: float) -> float:
        # Advance the modulating chain up to t (draws are consumed in
        # arrival order, so the trajectory is seed-deterministic).
        while t >= state["until"]:
            state["k"] = (state["k"] + 1) % len(rates) \
                if state["until"] > 0.0 else 0
            mean = dwell_s[state["k"]]
            state["until"] += -math.log(1.0 - rng.random()) * mean
        return rates[state["k"]]

    peak = max(rates)
    if peak <= 0:
        raise ValueError("at least one state rate must be positive")
    return _thinned_driver(env, handler, duration_s, peak, rate_at,
                           rng, name)


def diurnal_arrivals(env: Environment,
                     handler: Callable[[int], object],
                     duration_s: float, base_rate: float,
                     amplitude: float = 0.5,
                     period_s: Optional[float] = None,
                     phase: float = 0.0,
                     seed: int = 0, name: str = "diurnal"):
    """A sinusoidal day/night rate profile (nonhomogeneous Poisson).

    The instantaneous rate is ``base * (1 + amplitude * sin(...))``
    with one full period over ``period_s`` (default: the whole
    duration).  ``amplitude`` in [0, 1) keeps the rate positive.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if base_rate <= 0:
        raise ValueError("base rate must be positive")
    period = period_s if period_s is not None else duration_s
    if period <= 0:
        raise ValueError("period must be positive")
    rng = random.Random(seed)

    def rate_at(t: float) -> float:
        return base_rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period
                                       + phase))

    peak = base_rate * (1.0 + amplitude)
    return _thinned_driver(env, handler, duration_s, peak, rate_at,
                           rng, name)


def flash_crowd(env: Environment, handler: Callable[[int], object],
                duration_s: float, base_rate: float,
                peak_rate: float, surge_start_s: float,
                surge_s: float, ramp_s: float = 0.0,
                seed: int = 0, name: str = "flash"):
    """A flash-crowd surge: steady → (ramp) → peak → (ramp) → steady.

    Offered rate is ``base_rate`` outside the surge window and
    ``peak_rate`` inside ``[surge_start, surge_start + surge_s)``,
    with linear ramps of ``ramp_s`` on both edges.  This is the
    open-loop driver of the flash-crowd chaos scenario: the surge is
    *offered* regardless of what the cluster can absorb.
    """
    if peak_rate < base_rate:
        raise ValueError("peak rate must be >= base rate")
    if base_rate <= 0 or duration_s <= 0:
        raise ValueError("base rate and duration must be positive")
    if surge_start_s < 0 or surge_s <= 0 or ramp_s < 0:
        raise ValueError("surge window must be non-negative")
    rng = random.Random(seed)
    surge_end = surge_start_s + surge_s

    def rate_at(t: float) -> float:
        if ramp_s > 0 and surge_start_s - ramp_s <= t < surge_start_s:
            frac = (t - (surge_start_s - ramp_s)) / ramp_s
            return base_rate + frac * (peak_rate - base_rate)
        if surge_start_s <= t < surge_end:
            return peak_rate
        if ramp_s > 0 and surge_end <= t < surge_end + ramp_s:
            frac = 1.0 - (t - surge_end) / ramp_s
            return base_rate + frac * (peak_rate - base_rate)
        return base_rate

    return _thinned_driver(env, handler, duration_s, peak_rate,
                           rate_at, rng, name)


# -- per-request samplers ----------------------------------------------------------


def _unit_stream(seed: int, tag: str, index: int) -> float:
    """A crc32-derived uniform in [0, 1): pure in (seed, tag, index)."""
    stream = zlib.crc32(f"{tag}:{seed}:{index}".encode())
    return (stream % 1_000_000) / 1_000_000.0


class ParetoSizes:
    """Bounded heavy-tailed request sizes (Pareto by inverse CDF).

    ``size(i)`` is a pure function of ``(seed, i)`` — the i-th
    request has the same size no matter how many siblings were
    sampled — which keeps multi-driver scenarios deterministic.
    Sizes are clamped to ``[min_size, max_size]`` and rounded to
    ``align`` bytes.
    """

    def __init__(self, alpha: float = 1.3, min_size: int = 512,
                 max_size: int = 262_144, align: int = 64,
                 seed: int = 0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < min_size <= max_size:
            raise ValueError("need 0 < min_size <= max_size")
        if align < 1:
            raise ValueError("align must be >= 1")
        self.alpha = alpha
        self.min_size = min_size
        self.max_size = max_size
        self.align = align
        self.seed = seed

    def size(self, index: int) -> int:
        """The heavy-tailed size of request ``index``, in bytes."""
        unit = _unit_stream(self.seed, "pareto", index)
        raw = self.min_size / (1.0 - unit) ** (1.0 / self.alpha)
        clamped = min(max(raw, self.min_size), self.max_size)
        aligned = int(clamped // self.align) * self.align
        return max(aligned, self.min_size)

    def mean_sample(self, n: int = 1024) -> float:
        """The empirical mean of the first ``n`` sizes (for tuning)."""
        if n < 1:
            raise ValueError("need at least one sample")
        return sum(self.size(i) for i in range(n)) / n


class TenantMix:
    """A weighted tenant population for attributing request streams.

    ``tenant(i)`` deterministically assigns request ``i`` to one of
    the named tenants with probability proportional to its weight —
    again a pure function of ``(seed, i)``, so every driver in a
    scenario can share one mix without coordinating draw order.
    """

    def __init__(self, weights: Dict[str, float], seed: int = 0):
        if not weights:
            raise ValueError("need at least one tenant")
        if any(weight <= 0 for weight in weights.values()):
            raise ValueError("tenant weights must be positive")
        #: deterministic iteration: tenants in name order
        self.names = sorted(weights)
        self.weights = {name: weights[name] for name in self.names}
        self.seed = seed
        total = sum(self.weights.values())
        self._cumulative = []
        acc = 0.0
        for name in self.names:
            acc += self.weights[name] / total
            self._cumulative.append((acc, name))

    def tenant(self, index: int) -> str:
        """The tenant request ``index`` belongs to."""
        unit = _unit_stream(self.seed, "tenant", index)
        for bound, name in self._cumulative:
            if unit < bound:
                return name
        return self._cumulative[-1][1]

    def share(self, name: str) -> float:
        """The configured traffic share of one tenant."""
        total = sum(self.weights.values())
        return self.weights[name] / total
