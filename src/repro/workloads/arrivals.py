"""Open-loop request arrival processes.

The paper's Figures 2 and 3 sweep *offered load* (pages/second,
bandwidth) and measure CPU consumption — an open-loop setup.  These
helpers drive a per-request handler at a target rate, either at fixed
intervals or as a Poisson process, inside the simulation.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from ..sim import Environment

__all__ = ["open_loop", "poisson_arrivals"]


def open_loop(env: Environment, rate_per_s: float,
              handler: Callable[[int], object],
              duration_s: float,
              name: str = "open-loop"):
    """Fire ``handler(i)`` every ``1/rate`` seconds for ``duration``.

    ``handler`` returns a generator which is spawned as its own
    process (the arrival loop never blocks on request completion —
    that is what makes it open-loop).  A handler that fires work
    asynchronously and returns ``None`` is simply called — no process
    is spawned for it.  Returns the driver process.
    """
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    interval = 1.0 / rate_per_s
    count = int(duration_s * rate_per_s)

    def driver():
        for i in range(count):
            work = handler(i)
            if work is not None:
                env.process(work, name=f"{name}-req{i}")
            yield env.timeout(interval)

    return env.process(driver(), name=name)


def poisson_arrivals(env: Environment, rate_per_s: float,
                     handler: Callable[[int], object],
                     duration_s: float, seed: int = 0,
                     name: str = "poisson"):
    """Like :func:`open_loop` with exponential inter-arrival gaps."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    rng = random.Random(seed)

    def driver():
        elapsed = 0.0
        index = 0
        while True:
            gap = -math.log(1.0 - rng.random()) / rate_per_s
            elapsed += gap
            if elapsed >= duration_s:
                break
            yield env.timeout(gap)
            work = handler(index)
            if work is not None:
                env.process(work, name=f"{name}-req{index}")
            index += 1

    return env.process(driver(), name=name)
