"""A cloud-native DBMS page-server workload (Socrates/Aurora-style).

Section 7/9's motivating non-offloadable workload: storage servers
that apply transaction log records to pages ("log replay") while
serving page reads to compute nodes.  Log replay needs a large hot-
page working set ("100s of GB … an order of magnitude larger than DPU
memory"), which is why DDS must split traffic between DPU and host.

The generator emits a stream of remote requests: ``GetPage`` reads
(offloadable) and ``ApplyLog`` updates (host-only, each pinning
working-set memory), with configurable mix and skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..units import MiB, PAGE_SIZE

__all__ = ["PageServerWorkload", "PageRequest"]


@dataclass(frozen=True)
class PageRequest:
    """One remote request against the page server."""

    kind: str              # "get_page" or "apply_log"
    page_index: int
    offset: int
    size: int
    working_set: int = 0   # bytes of replay context (apply_log only)


class PageServerWorkload:
    """Request mix for a disaggregated page server."""

    def __init__(self, database_pages: int = 131_072,   # 1 GiB of pages
                 read_fraction: float = 0.9,
                 replay_working_set_bytes: int = 64 * MiB,
                 skew: float = 0.8, seed: int = 7):
        if database_pages < 1:
            raise ValueError("database needs pages")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= skew <= 1.0:
            raise ValueError("skew must be in [0, 1]")
        self.database_pages = database_pages
        self.read_fraction = read_fraction
        self.replay_working_set_bytes = replay_working_set_bytes
        self.skew = skew
        self._rng = random.Random(seed)

    def database_bytes(self) -> int:
        """Total size of the served database."""
        return self.database_pages * PAGE_SIZE

    def _page(self) -> int:
        # 80/20-style skew: `skew` of accesses hit 20% of pages.
        if self._rng.random() < self.skew:
            return self._rng.randrange(
                max(1, self.database_pages // 5)
            )
        return self._rng.randrange(self.database_pages)

    def next_request(self) -> PageRequest:
        """Draw the next remote request."""
        page = self._page()
        if self._rng.random() < self.read_fraction:
            return PageRequest("get_page", page, page * PAGE_SIZE,
                               PAGE_SIZE)
        return PageRequest(
            "apply_log", page, page * PAGE_SIZE, PAGE_SIZE,
            working_set=self.replay_working_set_bytes,
        )

    def requests(self, count: int) -> Iterator[PageRequest]:
        """A finite stream of ``count`` requests."""
        if count < 0:
            raise ValueError("negative request count")
        for _ in range(count):
            yield self.next_request()
