"""Synthetic relational tables for pushdown workloads.

The paper's predicate-pushdown scenario needs tables on disaggregated
storage.  This generator produces deterministic CSV tables from a
declarative schema (TPC-H-lineitem-flavoured preset included), split
into storage pages so they can be written through the Storage Engine
and scanned by the ``filter``/``aggregate``/``project`` DP kernels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..units import PAGE_SIZE

__all__ = ["Column", "TableSchema", "TableGenerator", "LINEITEM_ISH"]


@dataclass(frozen=True)
class Column:
    """One column: a name and a value generator."""

    name: str
    generate: Callable[[random.Random, int], str]


def _int_column(name: str, low: int, high: int) -> Column:
    return Column(name, lambda rng, row: str(rng.randint(low, high)))


def _choice_column(name: str, choices: Sequence[str]) -> Column:
    return Column(name, lambda rng, row: rng.choice(list(choices)))


def _serial_column(name: str) -> Column:
    return Column(name, lambda rng, row: str(row))


def _decimal_column(name: str, low: float, high: float) -> Column:
    return Column(
        name,
        lambda rng, row: f"{rng.uniform(low, high):.2f}",
    )


class TableSchema:
    """An ordered set of columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise ValueError("schema needs at least one column")
        names = [column.name for column in columns]
        if len(names) != len(set(names)):
            raise ValueError("duplicate column names")
        self.columns = list(columns)

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def index_of(self, name: str) -> int:
        """Positional index of the named column."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise KeyError(f"no column named {name!r}")


#: A lineitem-flavoured schema: the classic pushdown target.
LINEITEM_ISH = TableSchema([
    _serial_column("orderkey"),
    _int_column("partkey", 1, 20_000),
    _choice_column("returnflag", ("A", "N", "R")),
    _int_column("quantity", 1, 50),
    _decimal_column("extendedprice", 1.0, 100_000.0),
    _decimal_column("discount", 0.0, 0.1),
    _choice_column("shipmode", ("AIR", "SHIP", "TRUCK", "RAIL",
                                "MAIL")),
])


class TableGenerator:
    """Deterministic CSV rows from a schema."""

    def __init__(self, schema: TableSchema = LINEITEM_ISH,
                 seed: int = 77):
        self.schema = schema
        self.seed = seed

    def row(self, rng: random.Random, row_index: int) -> bytes:
        """One CSV row (no newline)."""
        return ",".join(
            column.generate(rng, row_index)
            for column in self.schema.columns
        ).encode()

    def rows(self, count: int) -> bytes:
        """``count`` newline-separated CSV rows."""
        if count < 0:
            raise ValueError("negative row count")
        rng = random.Random(self.seed)
        lines = [self.row(rng, index) for index in range(count)]
        return b"\n".join(lines) + (b"\n" if lines else b"")

    def pages(self, count: int,
              page_size: int = PAGE_SIZE) -> List[bytes]:
        """Rows packed into page-sized byte chunks (row-aligned).

        Each page holds whole rows; pages are at most ``page_size``
        bytes (a row longer than a page is rejected).
        """
        rng = random.Random(self.seed)
        pages: List[bytes] = []
        current: List[bytes] = []
        current_size = 0
        for index in range(count):
            line = self.row(rng, index) + b"\n"
            if len(line) > page_size:
                raise ValueError("row exceeds page size")
            if current_size + len(line) > page_size:
                pages.append(b"".join(current))
                current = []
                current_size = 0
            current.append(line)
            current_size += len(line)
        if current:
            pages.append(b"".join(current))
        return pages

    # -- predicate helpers ------------------------------------------------

    def column_predicate(self, name: str,
                         test: Callable[[bytes], bool]):
        """A record predicate over one named column (for ``filter``)."""
        index = self.schema.index_of(name)

        def predicate(record: bytes) -> bool:
            fields = record.split(b",")
            return index < len(fields) and test(fields[index])

        return predicate

    def column_extractor(self, name: str,
                         convert: Callable[[bytes], float] = float):
        """A value extractor over one column (for ``aggregate``)."""
        index = self.schema.index_of(name)

        def extract(record: bytes):
            return convert(record.split(b",")[index])

        return extract
